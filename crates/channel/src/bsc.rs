//! The binary symmetric channel (Section III, Fig. 2).
//!
//! Each transmitted bit is flipped independently with a crossover
//! probability equal to the channel's bit error rate. The analytical model
//! only needs the induced message failure probability (Eq. 2), but the
//! Monte-Carlo simulator transmits actual payloads through [`BinarySymmetricChannel::transmit`].

use crate::error::{ChannelError, Result};
use rand::Rng;

/// A memoryless binary symmetric channel with crossover probability `ber`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinarySymmetricChannel {
    ber: f64,
}

impl BinarySymmetricChannel {
    /// Creates a channel with the given bit error rate.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] if `ber` is not a
    /// probability.
    pub fn new(ber: f64) -> Result<Self> {
        if !ber.is_finite() || !(0.0..=1.0).contains(&ber) {
            return Err(ChannelError::InvalidProbability {
                name: "ber",
                value: ber,
            });
        }
        Ok(BinarySymmetricChannel { ber })
    }

    /// The crossover (bit error) probability.
    pub fn ber(self) -> f64 {
        self.ber
    }

    /// The Shannon capacity in bits per channel use:
    /// `C = 1 - H2(ber)` where `H2` is the binary entropy function.
    pub fn capacity(self) -> f64 {
        1.0 - binary_entropy(self.ber)
    }

    /// Probability that a `bits`-bit message crosses uncorrupted:
    /// `(1 - ber)^bits`.
    pub fn message_success_probability(self, bits: u32) -> f64 {
        f64::exp(f64::from(bits) * f64::ln_1p(-self.ber))
    }

    /// Transmits one bit, flipping it with probability `ber`.
    pub fn transmit_bit<R: Rng + ?Sized>(self, rng: &mut R, bit: bool) -> bool {
        if rng.gen::<f64>() < self.ber {
            !bit
        } else {
            bit
        }
    }

    /// Transmits a payload of packed bits, returning the received payload
    /// and the number of bit errors introduced.
    pub fn transmit<R: Rng + ?Sized>(self, rng: &mut R, payload: &[u8]) -> (Vec<u8>, u32) {
        let mut received = Vec::with_capacity(payload.len());
        let mut errors = 0;
        for &byte in payload {
            let mut flips = 0u8;
            for bit in 0..8 {
                if rng.gen::<f64>() < self.ber {
                    flips |= 1 << bit;
                    errors += 1;
                }
            }
            received.push(byte ^ flips);
        }
        (received, errors)
    }

    /// Samples whether a `bits`-bit message crosses without any bit error.
    ///
    /// Statistically identical to [`transmit`] followed by an equality check,
    /// but O(1): it draws against the aggregate success probability.
    ///
    /// [`transmit`]: BinarySymmetricChannel::transmit
    pub fn sample_message_success<R: Rng + ?Sized>(self, rng: &mut R, bits: u32) -> bool {
        rng.gen::<f64>() < self.message_success_probability(bits)
    }
}

/// The binary entropy function `H2(p)` in bits, with `H2(0) = H2(1) = 0`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_ber() {
        assert!(BinarySymmetricChannel::new(-0.1).is_err());
        assert!(BinarySymmetricChannel::new(1.1).is_err());
        assert!(BinarySymmetricChannel::new(f64::NAN).is_err());
    }

    #[test]
    fn noiseless_channel_is_identity() {
        let ch = BinarySymmetricChannel::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let payload = vec![0xA5, 0x3C, 0xFF, 0x00];
        let (rx, errors) = ch.transmit(&mut rng, &payload);
        assert_eq!(rx, payload);
        assert_eq!(errors, 0);
        assert_eq!(ch.capacity(), 1.0);
        assert_eq!(ch.message_success_probability(1016), 1.0);
    }

    #[test]
    fn always_flipping_channel_inverts() {
        let ch = BinarySymmetricChannel::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (rx, errors) = ch.transmit(&mut rng, &[0b1010_1010]);
        assert_eq!(rx, vec![0b0101_0101]);
        assert_eq!(errors, 8);
        assert_eq!(ch.capacity(), 1.0); // deterministic inversion carries full information
    }

    #[test]
    fn capacity_is_zero_at_half() {
        let ch = BinarySymmetricChannel::new(0.5).unwrap();
        assert!(ch.capacity().abs() < 1e-15);
    }

    #[test]
    fn empirical_bit_error_rate_matches() {
        let ch = BinarySymmetricChannel::new(0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let payload = vec![0u8; 20_000];
        let (_, errors) = ch.transmit(&mut rng, &payload);
        let observed = errors as f64 / (payload.len() as f64 * 8.0);
        assert!((observed - 0.02).abs() < 0.003, "observed {observed}");
    }

    #[test]
    fn message_success_matches_eq2_complement() {
        let ch = BinarySymmetricChannel::new(1e-4).unwrap();
        let p = ch.message_success_probability(1016);
        assert!((p - (1.0 - 0.0966)).abs() < 5e-5);
    }

    #[test]
    fn sampled_success_rate_matches_probability() {
        let ch = BinarySymmetricChannel::new(5e-4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let successes = (0..trials)
            .filter(|_| ch.sample_message_success(&mut rng, 1016))
            .count();
        let want = ch.message_success_probability(1016);
        let got = successes as f64 / trials as f64;
        assert!((got - want).abs() < 0.01, "{got} vs {want}");
    }

    #[test]
    fn binary_entropy_symmetry_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-15);
        for &p in &[0.1, 0.3, 0.45] {
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }
}
