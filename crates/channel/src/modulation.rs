//! Modulation schemes and their bit-error-rate curves over an AWGN channel.
//!
//! WirelessHART radios (IEEE 802.15.4 at 2.4 GHz) use OQPSK; the paper's
//! Eq. 1 gives its AWGN bit error rate as `BER = erfc(sqrt(Eb/N0)) / 2`.
//! A few other common schemes are provided for comparison studies.

use crate::math::erfc;
use crate::snr::EbN0;

/// A digital modulation scheme with a known AWGN BER curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Modulation {
    /// Offset quadrature phase-shift keying — the WirelessHART PHY
    /// (Eq. 1 of the paper): `BER = erfc(sqrt(Eb/N0)) / 2`.
    Oqpsk,
    /// Binary phase-shift keying; same coherent BER curve as OQPSK.
    Bpsk,
    /// Quadrature phase-shift keying; same per-bit BER as BPSK at equal
    /// `Eb/N0` (Gray-coded).
    Qpsk,
    /// Binary non-coherent frequency-shift keying:
    /// `BER = exp(-Eb/N0 / 2) / 2`.
    NoncoherentBfsk,
    /// Differential BPSK: `BER = exp(-Eb/N0) / 2`.
    Dbpsk,
}

impl Modulation {
    /// The bit error rate of this scheme on an AWGN channel at the given
    /// per-bit SNR.
    ///
    /// The result is a probability in `[0, 0.5]`.
    pub fn ber(self, snr: EbN0) -> f64 {
        let r = snr.linear();
        match self {
            // Eq. 1 of the paper.
            Modulation::Oqpsk | Modulation::Bpsk | Modulation::Qpsk => 0.5 * erfc(r.sqrt()),
            Modulation::NoncoherentBfsk => 0.5 * (-r / 2.0).exp(),
            Modulation::Dbpsk => 0.5 * (-r).exp(),
        }
    }

    /// The `Eb/N0` (linear) required to reach a target BER, found by
    /// bisection on the monotone BER curve.
    ///
    /// Returns `None` for targets outside `(0, 0.5)`.
    pub fn required_snr(self, target_ber: f64) -> Option<EbN0> {
        if !(0.0..0.5).contains(&target_ber) || target_ber == 0.0 {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        while self.ber(EbN0::from_linear(hi)) > target_ber {
            hi *= 2.0;
            if hi > 1e6 {
                return None;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.ber(EbN0::from_linear(mid)) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(EbN0::from_linear(0.5 * (lo + hi)))
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Modulation::Oqpsk => "OQPSK",
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::NoncoherentBfsk => "noncoherent BFSK",
            Modulation::Dbpsk => "DBPSK",
        };
        f.write_str(name)
    }
}

/// The WirelessHART MAC-layer payload length in bits: 127 bytes
/// (Section V-B of the paper).
pub const WIRELESSHART_MESSAGE_BITS: u32 = 127 * 8;

/// Probability that a message of `bits` independent bits suffers at least
/// one bit error (Eq. 2 of the paper): `p_fl = 1 - (1 - BER)^bits`.
///
/// Computed via `ln1p`/`exp_m1` so tiny BERs keep full precision.
///
/// # Panics
///
/// Panics if `ber` is outside `[0, 1]`.
pub fn message_failure_probability(ber: f64, bits: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&ber),
        "BER must be a probability, got {ber}"
    );
    -f64::exp_m1(f64::from(bits) * f64::ln_1p(-ber))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oqpsk_matches_paper_table_points() {
        // Table IV of the paper: Eb/N0 = 7 -> BER 9.14e-5; Eb/N0 = 6 -> 2.66e-4.
        let b7 = Modulation::Oqpsk.ber(EbN0::from_linear(7.0));
        let b6 = Modulation::Oqpsk.ber(EbN0::from_linear(6.0));
        assert!((b7 - 9.14e-5).abs() < 5e-7, "{b7}");
        assert!((b6 - 2.66e-4).abs() < 5e-7, "{b6}");
    }

    #[test]
    fn ber_is_half_at_zero_snr_for_psk() {
        let b = Modulation::Oqpsk.ber(EbN0::from_linear(0.0));
        assert!((b - 0.25).abs() < 1e-12 || b <= 0.5);
        // erfc(0)/2 = 0.5 exactly.
        assert!((Modulation::Bpsk.ber(EbN0::from_linear(0.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Oqpsk,
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::NoncoherentBfsk,
            Modulation::Dbpsk,
        ] {
            let mut last = m.ber(EbN0::from_linear(0.0));
            for i in 1..40 {
                let b = m.ber(EbN0::from_linear(i as f64 * 0.5));
                assert!(b < last, "{m} BER not monotone at step {i}");
                last = b;
            }
        }
    }

    #[test]
    fn coherent_psk_beats_noncoherent_fsk() {
        let snr = EbN0::from_linear(4.0);
        assert!(Modulation::Oqpsk.ber(snr) < Modulation::NoncoherentBfsk.ber(snr));
        assert!(Modulation::Dbpsk.ber(snr) < Modulation::NoncoherentBfsk.ber(snr));
    }

    #[test]
    fn required_snr_inverts_ber() {
        for &target in &[1e-3, 1e-4, 1e-5] {
            let snr = Modulation::Oqpsk.required_snr(target).unwrap();
            let back = Modulation::Oqpsk.ber(snr);
            assert!(((back - target) / target).abs() < 1e-9);
        }
    }

    #[test]
    fn required_snr_rejects_impossible_targets() {
        assert!(Modulation::Oqpsk.required_snr(0.0).is_none());
        assert!(Modulation::Oqpsk.required_snr(0.6).is_none());
    }

    #[test]
    fn message_failure_matches_paper_examples() {
        // Section V-B: BER = 1e-4, L = 1016 -> p_fl = 0.0966.
        let p = message_failure_probability(1e-4, WIRELESSHART_MESSAGE_BITS);
        assert!((p - 0.0966).abs() < 5e-5, "{p}");
        // Section VI-E: BER3 = 9.14e-5 -> 0.089; BER4 = 2.66e-4 -> 0.237.
        let p3 = message_failure_probability(9.14e-5, WIRELESSHART_MESSAGE_BITS);
        let p4 = message_failure_probability(2.66e-4, WIRELESSHART_MESSAGE_BITS);
        assert!((p3 - 0.089).abs() < 5e-4, "{p3}");
        assert!((p4 - 0.237).abs() < 5e-4, "{p4}");
    }

    #[test]
    fn message_failure_edge_cases() {
        assert_eq!(message_failure_probability(0.0, 1016), 0.0);
        assert_eq!(message_failure_probability(1.0, 1), 1.0);
        // Tiny BER: p_fl ~ bits * ber, no catastrophic cancellation.
        let p = message_failure_probability(1e-12, 1016);
        assert!((p - 1016e-12).abs() / p < 1e-6);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Oqpsk.to_string(), "OQPSK");
        assert_eq!(Modulation::NoncoherentBfsk.to_string(), "noncoherent BFSK");
    }
}
