//! The paper's two-state link model (Section III, Fig. 3).
//!
//! A wireless link alternates between an UP state, in which a whole message
//! is delivered without bit errors, and a DOWN state, in which transmission
//! certainly fails. Per slot the link fails with probability `p_fl` and
//! recovers with probability `p_rc`; channel hopping makes `p_rc` close to
//! (but below) one.

use crate::error::{ChannelError, Result};
use crate::modulation::{message_failure_probability, Modulation};
use crate::snr::EbN0;
use whart_dtmc::Dtmc;

/// The state of a link in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkState {
    /// Received signal strength above threshold; transmissions succeed.
    Up,
    /// Strong noise; transmissions fail.
    Down,
}

/// A probability distribution over [`LinkState`], `(P(up), P(down))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDistribution {
    up: f64,
}

impl LinkDistribution {
    /// A distribution with the given UP probability.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] if `up` is not a
    /// probability.
    pub fn new(up: f64) -> Result<Self> {
        check_probability("P(up)", up)?;
        Ok(LinkDistribution { up })
    }

    /// Point mass on a state.
    pub fn certain(state: LinkState) -> Self {
        LinkDistribution {
            up: if state == LinkState::Up { 1.0 } else { 0.0 },
        }
    }

    /// Probability of being UP.
    pub fn up(self) -> f64 {
        self.up
    }

    /// Probability of being DOWN.
    pub fn down(self) -> f64 {
        1.0 - self.up
    }
}

/// The two-state DTMC link model with per-slot failure probability `p_fl`
/// and recovery probability `p_rc`.
///
/// ```
/// use whart_channel::LinkModel;
///
/// # fn main() -> Result<(), whart_channel::ChannelError> {
/// // Section V-B of the paper: BER = 1e-4 on 127-byte messages.
/// let link = LinkModel::from_ber(1e-4, 127 * 8, LinkModel::DEFAULT_RECOVERY)?;
/// assert!((link.p_fl() - 0.0966).abs() < 5e-5);
/// assert!((link.availability() - 0.9031).abs() < 5e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    p_fl: f64,
    p_rc: f64,
}

impl LinkModel {
    /// The recovery probability used throughout the paper's evaluation:
    /// after a bad slot the pseudo-random hop almost surely lands on a
    /// working channel.
    pub const DEFAULT_RECOVERY: f64 = 0.9;

    /// Creates a link model from its two transition probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] if either parameter is
    /// not a probability, or if both are zero (the chain would have no
    /// unique stationary distribution).
    pub fn new(p_fl: f64, p_rc: f64) -> Result<Self> {
        check_probability("p_fl", p_fl)?;
        check_probability("p_rc", p_rc)?;
        if p_fl == 0.0 && p_rc == 0.0 {
            return Err(ChannelError::InvalidProbability {
                name: "p_fl+p_rc",
                value: 0.0,
            });
        }
        Ok(LinkModel { p_fl, p_rc })
    }

    /// Derives the failure probability from a bit error rate and message
    /// length (Eq. 2): `p_fl = 1 - (1 - ber)^bits`.
    ///
    /// # Errors
    ///
    /// See [`LinkModel::new`].
    pub fn from_ber(ber: f64, bits: u32, p_rc: f64) -> Result<Self> {
        check_probability("ber", ber)?;
        LinkModel::new(message_failure_probability(ber, bits), p_rc)
    }

    /// Derives the failure probability from a measured per-bit SNR via the
    /// modulation's AWGN BER curve (Eqs. 1-2).
    ///
    /// # Errors
    ///
    /// See [`LinkModel::new`].
    pub fn from_snr(modulation: Modulation, snr: EbN0, bits: u32, p_rc: f64) -> Result<Self> {
        LinkModel::from_ber(modulation.ber(snr), bits, p_rc)
    }

    /// Derives `p_fl` from a target stationary availability
    /// (inverting Eq. 4): `p_fl = p_rc * (1 - pi) / pi`.
    ///
    /// The paper's sweeps are parameterized this way
    /// (`pi(up)` in 0.693..0.989).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] if `availability` is not
    /// in `(0, 1]` or the implied `p_fl` leaves `[0, 1]`.
    pub fn from_availability(availability: f64, p_rc: f64) -> Result<Self> {
        check_probability("pi(up)", availability)?;
        if availability == 0.0 {
            return Err(ChannelError::InvalidProbability {
                name: "pi(up)",
                value: 0.0,
            });
        }
        let p_fl = p_rc * (1.0 - availability) / availability;
        if p_fl > 1.0 {
            return Err(ChannelError::InvalidProbability {
                name: "implied p_fl",
                value: p_fl,
            });
        }
        LinkModel::new(p_fl, p_rc)
    }

    /// Per-slot failure probability (UP -> DOWN).
    pub fn p_fl(self) -> f64 {
        self.p_fl
    }

    /// Per-slot recovery probability (DOWN -> UP).
    pub fn p_rc(self) -> f64 {
        self.p_rc
    }

    /// Stationary availability `pi(up) = p_rc / (p_rc + p_fl)` (Eq. 4).
    pub fn availability(self) -> f64 {
        self.p_rc / (self.p_rc + self.p_fl)
    }

    /// The stationary distribution.
    pub fn steady_state(self) -> LinkDistribution {
        LinkDistribution {
            up: self.availability(),
        }
    }

    /// One step of the link chain (Eq. 3).
    pub fn step(self, dist: LinkDistribution) -> LinkDistribution {
        let up = dist.up() * (1.0 - self.p_fl) + dist.down() * self.p_rc;
        LinkDistribution { up }
    }

    /// The distribution after `slots` steps from `initial` (Eq. 3 iterated,
    /// in closed form using the chain's second eigenvalue
    /// `lambda = 1 - p_fl - p_rc`).
    pub fn after(self, initial: LinkDistribution, slots: u64) -> LinkDistribution {
        let pi = self.availability();
        let lambda = 1.0 - self.p_fl - self.p_rc;
        // P(up at t) = pi + (P(up at 0) - pi) * lambda^t.
        let up = pi + (initial.up() - pi) * powi_u64(lambda, slots);
        LinkDistribution {
            up: up.clamp(0.0, 1.0),
        }
    }

    /// The UP-probability trajectory over `slots` steps, starting from
    /// `initial` (Fig. 17 of the paper plots these curves).
    pub fn up_trajectory(self, initial: LinkDistribution, slots: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(slots + 1);
        let mut d = initial;
        out.push(d.up());
        for _ in 0..slots {
            d = self.step(d);
            out.push(d.up());
        }
        out
    }

    /// Expected number of slots the link stays UP once up: `1 / p_fl`
    /// (infinite for `p_fl = 0`).
    pub fn mean_up_run(self) -> f64 {
        1.0 / self.p_fl
    }

    /// Expected number of slots to recover once down: `1 / p_rc`.
    pub fn mean_down_run(self) -> f64 {
        1.0 / self.p_rc
    }

    /// The explicit two-state DTMC (states labelled `UP`, `DOWN`).
    pub fn to_dtmc(self) -> Dtmc {
        let mut b = Dtmc::builder();
        let up = b.add_state("UP");
        let down = b.add_state("DOWN");
        b.add_transition(up, up, 1.0 - self.p_fl)
            .expect("valid probability");
        b.add_transition(up, down, self.p_fl)
            .expect("valid probability");
        b.add_transition(down, up, self.p_rc)
            .expect("valid probability");
        b.add_transition(down, down, 1.0 - self.p_rc)
            .expect("valid probability");
        b.build().expect("rows are stochastic by construction")
    }
}

/// `base^exp` for possibly negative `base` and `u64` exponent, by squaring.
fn powi_u64(base: f64, mut exp: u64) -> f64 {
    let mut acc = 1.0;
    let mut b = base;
    while exp > 0 {
        if exp & 1 == 1 {
            acc *= b;
        }
        b *= b;
        exp >>= 1;
    }
    acc
}

fn check_probability(name: &'static str, value: f64) -> Result<()> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(ChannelError::InvalidProbability { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_matches_eq4() {
        let link = LinkModel::new(0.3, 0.9).unwrap();
        assert!((link.availability() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn from_ber_matches_section_v_b() {
        let link = LinkModel::from_ber(1e-4, 1016, 0.9).unwrap();
        assert!((link.p_fl() - 0.0966).abs() < 5e-5);
        assert!((link.availability() - 0.9031).abs() < 5e-4);
    }

    #[test]
    fn from_availability_round_trips() {
        for &pi in &[0.693, 0.774, 0.83, 0.903, 0.948, 0.989] {
            let link = LinkModel::from_availability(pi, 0.9).unwrap();
            assert!((link.availability() - pi).abs() < 1e-12);
        }
    }

    #[test]
    fn from_snr_composes_eq1_and_eq2() {
        // Table IV: Eb/N0 = 7 -> p_fl = 0.089.
        let link =
            LinkModel::from_snr(Modulation::Oqpsk, EbN0::from_linear(7.0), 1016, 0.9).unwrap();
        assert!((link.p_fl() - 0.089).abs() < 5e-4, "{}", link.p_fl());
        // Eb/N0 = 6 -> p_fl = 0.237.
        let link =
            LinkModel::from_snr(Modulation::Oqpsk, EbN0::from_linear(6.0), 1016, 0.9).unwrap();
        assert!((link.p_fl() - 0.237).abs() < 5e-4, "{}", link.p_fl());
    }

    #[test]
    fn step_matches_dtmc_transient() {
        let link = LinkModel::new(0.184, 0.9).unwrap();
        let chain = link.to_dtmc();
        let traj = chain.transient_trajectory(&[0.0, 1.0], 6).unwrap();
        let ours = link.up_trajectory(LinkDistribution::certain(LinkState::Down), 6);
        for (t, up) in ours.iter().enumerate() {
            assert!((up - traj[t][0]).abs() < 1e-14, "slot {t}");
        }
    }

    #[test]
    fn closed_form_after_matches_iteration() {
        let link = LinkModel::new(0.05, 0.9).unwrap();
        let init = LinkDistribution::certain(LinkState::Down);
        let traj = link.up_trajectory(init, 20);
        for (t, want) in traj.iter().enumerate() {
            let got = link.after(init, t as u64).up();
            assert!((got - want).abs() < 1e-12, "slot {t}: {got} vs {want}");
        }
    }

    #[test]
    fn fig17_recovery_is_nearly_immediate() {
        // Fig. 17: starting DOWN, one slot already reaches P(up) = 0.9 and
        // the chain is at steady state (within 1%) after two slots.
        for &p_fl in &[0.184, 0.05] {
            let link = LinkModel::new(p_fl, 0.9).unwrap();
            let traj = link.up_trajectory(LinkDistribution::certain(LinkState::Down), 6);
            assert_eq!(traj[0], 0.0);
            assert!((traj[1] - 0.9).abs() < 1e-12);
            assert!((traj[2] - link.availability()).abs() < 0.01);
        }
    }

    #[test]
    fn steady_state_is_fixed_point_of_step() {
        let link = LinkModel::new(0.26, 0.9).unwrap();
        let pi = link.steady_state();
        let stepped = link.step(pi);
        assert!((stepped.up() - pi.up()).abs() < 1e-15);
    }

    #[test]
    fn mean_runs() {
        let link = LinkModel::new(0.25, 0.5).unwrap();
        assert!((link.mean_up_run() - 4.0).abs() < 1e-12);
        assert!((link.mean_down_run() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LinkModel::new(-0.1, 0.9).is_err());
        assert!(LinkModel::new(0.1, 1.5).is_err());
        assert!(LinkModel::new(0.0, 0.0).is_err());
        assert!(LinkModel::from_availability(0.0, 0.9).is_err());
        // pi = 0.3 with p_rc = 0.9 would need p_fl = 2.1 > 1.
        assert!(LinkModel::from_availability(0.3, 0.9).is_err());
        assert!(LinkDistribution::new(1.2).is_err());
    }

    #[test]
    fn certain_distributions() {
        assert_eq!(LinkDistribution::certain(LinkState::Up).up(), 1.0);
        assert_eq!(LinkDistribution::certain(LinkState::Down).down(), 1.0);
    }

    #[test]
    fn powi_u64_matches_std() {
        for &b in &[-0.5f64, 0.3, 1.1] {
            for e in 0u64..20 {
                assert!((powi_u64(b, e) - b.powi(e as i32)).abs() < 1e-12);
            }
        }
    }
}
