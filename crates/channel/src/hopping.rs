//! Pseudo-random channel hopping and channel blacklisting (Section II).
//!
//! The 2.4 GHz band is divided into 16 non-overlapping IEEE 802.15.4
//! channels (numbers 11..=26). WirelessHART hops pseudo-randomly over the
//! *active* channel list each slot; channels that suffer persistent
//! interference are blacklisted by the network manager and excluded.
//!
//! The hop sequence used here is the standard WirelessHART construction:
//! `active[(channel_offset + absolute_slot) mod active_len]` where each link
//! gets its own offset, which de-correlates simultaneous transmissions.

use crate::error::{ChannelError, Result};

/// Lowest IEEE 802.15.4 channel number in the 2.4 GHz band.
pub const FIRST_CHANNEL: u8 = 11;
/// Number of channels in the band.
pub const CHANNEL_COUNT: usize = 16;

/// One of the 16 IEEE 802.15.4 channels, numbered 11..=26.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(u8);

impl ChannelId {
    /// Wraps a channel number.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::ChannelOutOfRange`] for numbers outside
    /// `11..=26`.
    pub fn new(number: u8) -> Result<Self> {
        if !(FIRST_CHANNEL..FIRST_CHANNEL + CHANNEL_COUNT as u8).contains(&number) {
            return Err(ChannelError::ChannelOutOfRange { channel: number });
        }
        Ok(ChannelId(number))
    }

    /// The IEEE channel number (11..=26).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Zero-based index into the band (0..16).
    pub fn index(self) -> usize {
        usize::from(self.0 - FIRST_CHANNEL)
    }

    /// All sixteen channels in ascending order.
    pub fn all() -> impl Iterator<Item = ChannelId> {
        (FIRST_CHANNEL..FIRST_CHANNEL + CHANNEL_COUNT as u8).map(ChannelId)
    }

    /// The channel's center frequency in MHz (2405 + 5 * (ch - 11)).
    pub fn center_frequency_mhz(self) -> u32 {
        2405 + 5 * u32::from(self.0 - FIRST_CHANNEL)
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Per-channel quality: the bit error rate observed on each of the 16
/// channels (e.g. Wi-Fi interference makes a few channels much worse).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConditions {
    ber: [f64; CHANNEL_COUNT],
}

impl ChannelConditions {
    /// All channels share one bit error rate.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] for a non-probability.
    pub fn uniform(ber: f64) -> Result<Self> {
        if !ber.is_finite() || !(0.0..=1.0).contains(&ber) {
            return Err(ChannelError::InvalidProbability {
                name: "ber",
                value: ber,
            });
        }
        Ok(ChannelConditions {
            ber: [ber; CHANNEL_COUNT],
        })
    }

    /// Per-channel bit error rates, indexed by [`ChannelId::index`].
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] for any non-probability.
    pub fn from_bers(ber: [f64; CHANNEL_COUNT]) -> Result<Self> {
        for &b in &ber {
            if !b.is_finite() || !(0.0..=1.0).contains(&b) {
                return Err(ChannelError::InvalidProbability {
                    name: "ber",
                    value: b,
                });
            }
        }
        Ok(ChannelConditions { ber })
    }

    /// The BER on one channel.
    pub fn ber(&self, channel: ChannelId) -> f64 {
        self.ber[channel.index()]
    }

    /// Overrides the BER of one channel (e.g. to model a Wi-Fi collision).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidProbability`] for a non-probability.
    pub fn set_ber(&mut self, channel: ChannelId, ber: f64) -> Result<()> {
        if !ber.is_finite() || !(0.0..=1.0).contains(&ber) {
            return Err(ChannelError::InvalidProbability {
                name: "ber",
                value: ber,
            });
        }
        self.ber[channel.index()] = ber;
        Ok(())
    }
}

/// The network manager's active channel list with blacklisting.
#[derive(Debug, Clone, PartialEq)]
pub struct Blacklist {
    banned: [bool; CHANNEL_COUNT],
}

impl Default for Blacklist {
    fn default() -> Self {
        Blacklist {
            banned: [false; CHANNEL_COUNT],
        }
    }
}

impl Blacklist {
    /// An empty blacklist (all 16 channels active).
    pub fn new() -> Self {
        Blacklist::default()
    }

    /// Bans a channel.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::NoActiveChannels`] if this would ban the last
    /// active channel; the ban is not applied in that case.
    pub fn ban(&mut self, channel: ChannelId) -> Result<()> {
        if self.active_count() == 1 && !self.banned[channel.index()] {
            return Err(ChannelError::NoActiveChannels);
        }
        self.banned[channel.index()] = true;
        Ok(())
    }

    /// Re-activates a channel.
    pub fn unban(&mut self, channel: ChannelId) {
        self.banned[channel.index()] = false;
    }

    /// Whether a channel is banned.
    pub fn is_banned(&self, channel: ChannelId) -> bool {
        self.banned[channel.index()]
    }

    /// The active channels in ascending order.
    pub fn active_channels(&self) -> Vec<ChannelId> {
        ChannelId::all().filter(|c| !self.is_banned(*c)).collect()
    }

    /// Number of active channels.
    pub fn active_count(&self) -> usize {
        self.banned.iter().filter(|b| !**b).count()
    }

    /// Bans every channel whose BER in `conditions` is at or above
    /// `threshold`, never banning the last active channel. Returns the
    /// channels banned by this call.
    pub fn ban_above(&mut self, conditions: &ChannelConditions, threshold: f64) -> Vec<ChannelId> {
        let mut banned = Vec::new();
        for channel in ChannelId::all() {
            if conditions.ber(channel) >= threshold
                && !self.is_banned(channel)
                && self.ban(channel).is_ok()
            {
                banned.push(channel);
            }
        }
        banned
    }
}

/// A deterministic pseudo-random hop sequence over the active channels.
///
/// Each link owns a `channel offset`; at absolute slot `t` the link uses
/// `active[(offset + t) mod active_len]`, the construction used by the
/// WirelessHART data-link layer.
#[derive(Debug, Clone, PartialEq)]
pub struct HopSequence {
    active: Vec<ChannelId>,
    offset: usize,
}

impl HopSequence {
    /// Creates a hop sequence for one link.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::NoActiveChannels`] if `blacklist` has banned
    /// everything.
    pub fn new(blacklist: &Blacklist, channel_offset: usize) -> Result<Self> {
        let active = blacklist.active_channels();
        if active.is_empty() {
            return Err(ChannelError::NoActiveChannels);
        }
        Ok(HopSequence {
            offset: channel_offset % active.len(),
            active,
        })
    }

    /// The channel used at an absolute slot number.
    pub fn channel_at(&self, absolute_slot: u64) -> ChannelId {
        let idx = (self.offset as u64 + absolute_slot) % self.active.len() as u64;
        self.active[idx as usize]
    }

    /// Number of active channels in the sequence.
    pub fn period(&self) -> usize {
        self.active.len()
    }

    /// The average BER over the hop period — the effective memoryless BER a
    /// link sees when conditions differ per channel.
    pub fn mean_ber(&self, conditions: &ChannelConditions) -> f64 {
        let total: f64 = self.active.iter().map(|c| conditions.ber(*c)).sum();
        total / self.active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_numbers_and_frequencies() {
        let c11 = ChannelId::new(11).unwrap();
        let c26 = ChannelId::new(26).unwrap();
        assert_eq!(c11.index(), 0);
        assert_eq!(c26.index(), 15);
        assert_eq!(c11.center_frequency_mhz(), 2405);
        assert_eq!(c26.center_frequency_mhz(), 2480);
        assert_eq!(ChannelId::all().count(), 16);
        assert!(ChannelId::new(10).is_err());
        assert!(ChannelId::new(27).is_err());
        assert_eq!(c11.to_string(), "ch11");
    }

    #[test]
    fn blacklist_protects_last_channel() {
        let mut bl = Blacklist::new();
        let channels: Vec<_> = ChannelId::all().collect();
        for c in &channels[..15] {
            bl.ban(*c).unwrap();
        }
        assert_eq!(bl.active_count(), 1);
        assert_eq!(
            bl.ban(channels[15]).unwrap_err(),
            ChannelError::NoActiveChannels
        );
        assert_eq!(bl.active_count(), 1);
        // Banning an already banned channel is fine.
        bl.ban(channels[0]).unwrap();
        bl.unban(channels[0]);
        assert_eq!(bl.active_count(), 2);
    }

    #[test]
    fn ban_above_uses_threshold() {
        let mut conditions = ChannelConditions::uniform(1e-5).unwrap();
        let bad = ChannelId::new(15).unwrap();
        conditions.set_ber(bad, 0.02).unwrap();
        let mut bl = Blacklist::new();
        let banned = bl.ban_above(&conditions, 0.01);
        assert_eq!(banned, vec![bad]);
        assert!(bl.is_banned(bad));
        assert_eq!(bl.active_count(), 15);
    }

    #[test]
    fn hop_sequence_cycles_over_active_channels() {
        let mut bl = Blacklist::new();
        bl.ban(ChannelId::new(12).unwrap()).unwrap();
        let seq = HopSequence::new(&bl, 0).unwrap();
        assert_eq!(seq.period(), 15);
        // Channel 12 never appears.
        for t in 0..45 {
            assert_ne!(seq.channel_at(t).number(), 12);
        }
        // The sequence is periodic with the active count.
        assert_eq!(seq.channel_at(3), seq.channel_at(3 + 15));
    }

    #[test]
    fn offsets_decorrelate_links() {
        let bl = Blacklist::new();
        let a = HopSequence::new(&bl, 0).unwrap();
        let b = HopSequence::new(&bl, 5).unwrap();
        assert_ne!(a.channel_at(0), b.channel_at(0));
        // Same slot, different offsets -> different channels (mod 16).
        assert_eq!(b.channel_at(0), a.channel_at(5));
    }

    #[test]
    fn mean_ber_averages_over_period() {
        let mut conditions = ChannelConditions::uniform(0.0).unwrap();
        conditions
            .set_ber(ChannelId::new(11).unwrap(), 0.16)
            .unwrap();
        let seq = HopSequence::new(&Blacklist::new(), 3).unwrap();
        assert!((seq.mean_ber(&conditions) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn empty_blacklist_round_trip() {
        let bl = Blacklist::new();
        assert_eq!(bl.active_count(), 16);
        assert!(HopSequence::new(&bl, 99).is_ok());
    }

    #[test]
    fn conditions_reject_bad_ber() {
        assert!(ChannelConditions::uniform(1.5).is_err());
        assert!(ChannelConditions::from_bers([2.0; 16]).is_err());
        let mut c = ChannelConditions::uniform(0.0).unwrap();
        assert!(c.set_ber(ChannelId::new(11).unwrap(), -0.5).is_err());
    }
}
