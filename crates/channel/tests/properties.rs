//! Property-based tests for the physical-layer substrate.

use proptest::prelude::*;
use whart_channel::math::{erf, erfc, gamma_p, gamma_q};
use whart_channel::{
    ber_from_failure_probability, message_failure_probability, Blacklist, ChannelId, EbN0,
    HopSequence, LinkDistribution, LinkModel, Modulation, SnrDb,
};

proptest! {
    #[test]
    fn erf_erfc_complement_everywhere(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn erf_stays_in_range(x in -20.0f64..20.0) {
        let y = erf(x);
        prop_assert!((-1.0..=1.0).contains(&y));
        let c = erfc(x);
        prop_assert!((0.0..=2.0).contains(&c));
    }

    #[test]
    fn gamma_p_q_partition(a in 0.1f64..10.0, x in 0.0f64..30.0) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&gamma_p(a, x)));
    }

    #[test]
    fn ber_curves_are_probabilities(snr in 0.0f64..40.0) {
        for m in [
            Modulation::Oqpsk,
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::NoncoherentBfsk,
            Modulation::Dbpsk,
        ] {
            let b = m.ber(EbN0::from_linear(snr));
            prop_assert!((0.0..=0.5).contains(&b), "{m}: {b}");
        }
    }

    #[test]
    fn message_failure_monotone_in_ber_and_bits(
        ber in 0.0f64..0.01,
        bits in 1u32..4096,
    ) {
        let p = message_failure_probability(ber, bits);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(message_failure_probability(ber, bits + 1) >= p);
        prop_assert!(message_failure_probability((ber * 1.5).min(1.0), bits) >= p);
    }

    #[test]
    fn ber_failure_inversion_round_trips(ber in 1e-9f64..0.01, bits in 1u32..4096) {
        let p_fl = message_failure_probability(ber, bits);
        // Once p_fl saturates towards 1 the representation of 1 - p_fl loses
        // relative precision and the round trip is inherently lossy, so only
        // the operationally relevant regime is asserted tightly.
        prop_assume!(p_fl < 0.99);
        let back = ber_from_failure_probability(p_fl, bits);
        prop_assert!(((back - ber) / ber).abs() < 1e-8);
    }

    #[test]
    fn link_transient_converges_to_availability(
        p_fl in 0.01f64..1.0,
        p_rc in 0.01f64..1.0,
        up0 in 0.0f64..1.0,
    ) {
        let link = LinkModel::new(p_fl, p_rc).unwrap();
        let d0 = LinkDistribution::new(up0).unwrap();
        let far = link.after(d0, 10_000);
        prop_assert!((far.up() - link.availability()).abs() < 1e-9);
    }

    #[test]
    fn link_closed_form_matches_stepping(
        p_fl in 0.0f64..1.0,
        p_rc in 0.001f64..1.0,
        up0 in 0.0f64..1.0,
        slots in 0u64..60,
    ) {
        let link = LinkModel::new(p_fl, p_rc).unwrap();
        let mut d = LinkDistribution::new(up0).unwrap();
        for _ in 0..slots {
            d = link.step(d);
        }
        let closed = link.after(LinkDistribution::new(up0).unwrap(), slots);
        prop_assert!((closed.up() - d.up()).abs() < 1e-10);
    }

    #[test]
    fn availability_inversion_round_trips(pi in 0.5f64..0.999) {
        let link = LinkModel::from_availability(pi, 0.9).unwrap();
        prop_assert!((link.availability() - pi).abs() < 1e-12);
    }

    #[test]
    fn snr_db_round_trip(db in -30.0f64..30.0) {
        let lin = EbN0::from_db(SnrDb::new(db));
        prop_assert!((lin.to_db().value() - db).abs() < 1e-9);
    }

    #[test]
    fn hop_sequence_is_fair(offset in 0usize..64) {
        // Over one period every active channel appears exactly once.
        let seq = HopSequence::new(&Blacklist::new(), offset).unwrap();
        let mut seen = [0u32; 16];
        for t in 0..16u64 {
            seen[seq.channel_at(t).index()] += 1;
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn blacklist_never_empties(channels in proptest::collection::vec(11u8..=26, 0..40)) {
        let mut bl = Blacklist::new();
        for c in channels {
            let _ = bl.ban(ChannelId::new(c).unwrap());
        }
        prop_assert!(bl.active_count() >= 1);
    }
}
