//! Scenario jobs and their results.
//!
//! A [`Scenario`] is one unit of batch work: a workload (a full network
//! or a set of standalone path models — the network spec with its
//! parameter overrides and failure injections already applied) plus the
//! set of requested measures. The engine plans every submitted scenario
//! into a deduplicated set of path solves and assembles a
//! [`ScenarioResult`] per scenario, in submission order.

use std::sync::Arc;

use whart_model::{
    DelayConvention, MeasurePlan, NetworkEvaluation, NetworkModel, PathEvaluation, PathModel,
    UtilizationConvention,
};

/// A canonical link-quality specification, resolved to a
/// [`whart_channel::LinkModel`] through the engine's link cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkQualitySpec {
    /// Explicit Gilbert-model transition probabilities (Eq. 5).
    Transitions {
        /// Per-slot failure probability.
        p_fl: f64,
        /// Per-slot recovery probability.
        p_rc: f64,
    },
    /// Bit error rate at a message length of `L` bits (Eq. 2).
    Ber {
        /// Bit error rate.
        ber: f64,
        /// Message length `L` in bits.
        message_bits: u32,
        /// Recovery probability.
        p_rc: f64,
    },
    /// Per-bit SNR through the OQPSK curve (Eq. 1) at `L` bits.
    Snr {
        /// Linear Eb/N0.
        snr: f64,
        /// Message length `L` in bits.
        message_bits: u32,
        /// Recovery probability.
        p_rc: f64,
    },
    /// Stationary availability `pi(up)` (inverting Eq. 4).
    Availability {
        /// Stationary UP probability.
        availability: f64,
        /// Recovery probability.
        p_rc: f64,
    },
}

impl LinkQualitySpec {
    /// Availability with the paper's default recovery probability.
    pub fn availability(availability: f64) -> LinkQualitySpec {
        LinkQualitySpec::Availability {
            availability,
            p_rc: whart_channel::LinkModel::DEFAULT_RECOVERY,
        }
    }
}

/// What a scenario evaluates.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A full network: one path solve per route, assembled into a
    /// [`NetworkEvaluation`]. Shared behind an [`Arc`] so resubmitting
    /// the same model across drains (warm fleets, long-lived services)
    /// bumps a reference count instead of deep-copying the topology,
    /// schedule and override tables.
    Network(Arc<NetworkModel>),
    /// Standalone path models (the single-path studies and sweeps).
    Paths(Vec<PathModel>),
}

/// The measures to extract from a scenario's evaluations, with the
/// conventions to apply. Conventions parameterize the cheap measure
/// extraction, not the cached DTMC solve, so they are not part of the
/// path cache key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureSet {
    /// Per-path reachability `R` (Eq. 6).
    pub reachability: bool,
    /// Per-path expected delay and the network mean `E[Gamma]` (Eq. 13).
    pub expected_delay: bool,
    /// Expected reporting intervals to the first loss (Eq. 8).
    pub expected_intervals_to_first_loss: bool,
    /// Per-path and network utilization `U` (Eq. 11).
    pub utilization: bool,
    /// The raw cycle probability function (Fig. 4's `g`).
    pub cycle_probabilities: bool,
    /// The full per-slot goal trajectory (Fig. 6's step curves). Off by
    /// default: unlike the other measures this one changes what the solve
    /// materializes and caches (it is part of the path cache key), and it
    /// costs `O(Is^2 * F_up)` memory per cached evaluation.
    pub goal_trajectory: bool,
    /// Delay accounting convention.
    pub delay_convention: DelayConvention,
    /// Utilization accounting convention.
    pub utilization_convention: UtilizationConvention,
}

impl Default for MeasureSet {
    fn default() -> Self {
        MeasureSet {
            reachability: true,
            expected_delay: true,
            expected_intervals_to_first_loss: true,
            utilization: true,
            cycle_probabilities: false,
            goal_trajectory: false,
            delay_convention: DelayConvention::Absolute,
            utilization_convention: UtilizationConvention::AsEvaluated,
        }
    }
}

impl MeasureSet {
    /// The solve-time plan this measure set demands: everything except
    /// the goal trajectory is derived from the always-present scalars.
    pub fn plan(&self) -> MeasurePlan {
        MeasurePlan {
            goal_trajectory: self.goal_trajectory,
        }
    }
}

/// One batch job.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Caller-chosen identifier, echoed on the result.
    pub label: String,
    /// The models to solve.
    pub workload: Workload,
    /// The measures to extract.
    pub measures: MeasureSet,
}

impl Scenario {
    /// A network scenario with default measures. Accepts an owned model
    /// or an `Arc<NetworkModel>` — callers resubmitting one model across
    /// drains should pass the `Arc` to skip the deep copy.
    pub fn network(label: impl Into<String>, model: impl Into<Arc<NetworkModel>>) -> Scenario {
        Scenario {
            label: label.into(),
            workload: Workload::Network(model.into()),
            measures: MeasureSet::default(),
        }
    }

    /// A standalone-paths scenario with default measures.
    pub fn paths(label: impl Into<String>, models: Vec<PathModel>) -> Scenario {
        Scenario {
            label: label.into(),
            workload: Workload::Paths(models),
            measures: MeasureSet::default(),
        }
    }

    /// Replaces the measure set.
    #[must_use]
    pub fn with_measures(mut self, measures: MeasureSet) -> Scenario {
        self.measures = measures;
        self
    }
}

/// The measures extracted from one path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PathMeasures {
    /// Reachability, if requested.
    pub reachability: Option<f64>,
    /// Expected delay in ms, if requested (also `None` for an unreachable
    /// path).
    pub expected_delay_ms: Option<f64>,
    /// Expected intervals to first loss, if requested.
    pub expected_intervals_to_first_loss: Option<f64>,
    /// Utilization, if requested.
    pub utilization: Option<f64>,
    /// Cycle probability function, if requested.
    pub cycle_probabilities: Option<Vec<f64>>,
}

/// The evaluations behind one scenario result.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A network evaluation (for [`Workload::Network`]).
    Network(NetworkEvaluation),
    /// Standalone path evaluations in model order (for
    /// [`Workload::Paths`]).
    Paths(Vec<PathEvaluation>),
}

/// The result of one scenario, in submission order from
/// [`crate::Engine::drain`].
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// The full evaluations.
    pub outcome: Outcome,
    /// Requested per-path measures, in path order.
    pub path_measures: Vec<PathMeasures>,
    /// Network mean delay `E[Gamma]` (network workloads with
    /// `expected_delay` requested and every path reachable).
    pub mean_delay_ms: Option<f64>,
    /// Network utilization `U` (network workloads with `utilization`
    /// requested).
    pub network_utilization: Option<f64>,
}

impl ScenarioResult {
    /// The network evaluation, for network workloads.
    pub fn network(&self) -> Option<&NetworkEvaluation> {
        match &self.outcome {
            Outcome::Network(eval) => Some(eval),
            Outcome::Paths(_) => None,
        }
    }

    /// Every path evaluation, regardless of workload kind.
    pub fn path_evaluations(&self) -> Vec<&PathEvaluation> {
        match &self.outcome {
            Outcome::Network(eval) => eval
                .reports()
                .iter()
                .map(|r| r.evaluation.as_ref())
                .collect(),
            Outcome::Paths(evals) => evals.iter().collect(),
        }
    }
}

pub(crate) fn extract_path_measures(
    evaluation: &PathEvaluation,
    measures: MeasureSet,
) -> PathMeasures {
    PathMeasures {
        reachability: measures.reachability.then(|| evaluation.reachability()),
        expected_delay_ms: if measures.expected_delay {
            evaluation.expected_delay_ms(measures.delay_convention)
        } else {
            None
        },
        expected_intervals_to_first_loss: measures
            .expected_intervals_to_first_loss
            .then(|| evaluation.expected_intervals_to_first_loss()),
        utilization: measures
            .utilization
            .then(|| evaluation.utilization(measures.utilization_convention)),
        cycle_probabilities: measures
            .cycle_probabilities
            .then(|| evaluation.cycle_probabilities().as_slice().to_vec()),
    }
}
