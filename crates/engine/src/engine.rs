//! The batch-evaluation engine.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use whart_channel::{EbN0, LinkModel, Modulation};
use whart_model::signature::PathSignature;
use whart_model::{
    FastSolver, MeasurePlan, NetworkEvaluation, PathEvaluation, PathModel, PathProblem, PathReport,
    Result, Solver,
};
use whart_obs::Metrics;
use whart_prof::{Frame, Profiler};
use whart_trace::Trace;

use crate::cache::{LinkCache, LinkKey, PathCache};
use crate::pool;
use crate::scenario::{
    extract_path_measures, LinkQualitySpec, Outcome, Scenario, ScenarioResult, Workload,
};

/// Counters and timings accumulated over an engine's lifetime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Scenarios accepted by [`Engine::submit`].
    pub jobs_submitted: u64,
    /// Scenarios fully assembled by [`Engine::drain`].
    pub jobs_completed: u64,
    /// Path solves requested across all scenarios (before deduplication).
    pub paths_requested: u64,
    /// Distinct path DTMCs actually solved.
    pub paths_evaluated: u64,
    /// Path solves answered from the path cache (warm entries and
    /// in-batch duplicates).
    pub path_cache_hits: u64,
    /// Path solves that had to be planned.
    pub path_cache_misses: u64,
    /// Link-model derivations answered from the link cache.
    pub link_cache_hits: u64,
    /// Link-model derivations computed.
    pub link_cache_misses: u64,
    /// Path evaluations evicted by the path cache's capacity bound.
    pub path_cache_evictions: u64,
    /// Link models evicted by the link cache's capacity bound.
    pub link_cache_evictions: u64,
    /// *Chunks* of work migrated between workers by work stealing (a
    /// steal claims a whole chunk of a sibling's share; see
    /// [`EngineStats::stolen_tasks`] for the per-solve count).
    pub steals: u64,
    /// Individual path solves that ran on a worker other than the one
    /// their signature affinity assigned them to — the sum of the sizes
    /// of all stolen chunks.
    pub stolen_tasks: u64,
    /// Peak per-worker queue depth observed while executing.
    pub max_queue_depth: usize,
    /// Wall time spent planning (signature derivation, deduplication).
    pub plan_wall: Duration,
    /// Wall time spent solving path DTMCs on the worker pool.
    pub execute_wall: Duration,
    /// Wall time spent assembling results and extracting measures.
    pub assemble_wall: Duration,
    /// The worker-thread count the engine was configured with.
    pub workers: usize,
    /// The worker-thread count the execute stage actually uses:
    /// `workers` clamped to the machine's available parallelism (extra
    /// threads on a CPU-bound fixed task set only add spawn and
    /// context-switch overhead).
    pub effective_workers: usize,
}

impl EngineStats {
    /// Total cache hits across both memoization layers.
    pub fn cache_hits(&self) -> u64 {
        self.path_cache_hits + self.link_cache_hits
    }

    /// Total wall time across the three stages.
    pub fn total_wall(&self) -> Duration {
        self.plan_wall + self.execute_wall + self.assemble_wall
    }

    /// Fraction of path solves answered from the path cache, or `None`
    /// when no path lookups have happened yet — callers reporting the
    /// ratio must not manufacture a `NaN` from a cold engine.
    pub fn path_cache_hit_ratio(&self) -> Option<f64> {
        let total = self.path_cache_hits + self.path_cache_misses;
        if total == 0 {
            return None;
        }
        Some(self.path_cache_hits as f64 / total as f64)
    }

    /// Fraction of link derivations answered from the link cache, or
    /// `None` when no link lookups have happened yet.
    pub fn link_cache_hit_ratio(&self) -> Option<f64> {
        let total = self.link_cache_hits + self.link_cache_misses;
        if total == 0 {
            return None;
        }
        Some(self.link_cache_hits as f64 / total as f64)
    }
}

/// A parallel, memoizing batch evaluator for scenario fleets.
///
/// Every scenario is lowered to the compiled problem IR
/// ([`PathProblem`]), planned into a deduplicated set of path solves
/// (keyed by the IR-derived [`PathSignature`] plus the requested
/// [`MeasurePlan`]), executed on a work-stealing worker pool through the
/// engine's [`Solver`] backend, and assembled back into per-scenario
/// results in submission order. Caches persist across drains, so a warm
/// engine answers repeated fleets without solving anything. The solver
/// backend is fixed at construction (the caches hold that backend's
/// results); use one engine per backend when comparing them.
///
/// ```
/// use whart_engine::{Engine, Scenario};
/// use whart_model::sweeps::section_v_model;
/// use whart_net::ReportingInterval;
///
/// let mut engine = Engine::new(4);
/// let model = section_v_model(0.83, ReportingInterval::REGULAR)?;
/// engine.submit(Scenario::paths("demo", vec![model]));
/// let results = engine.drain()?;
/// assert_eq!(results.len(), 1);
/// # Ok::<(), whart_model::ModelError>(())
/// ```
pub struct Engine {
    workers: usize,
    effective_workers: usize,
    solver: Arc<dyn Solver>,
    link_cache: LinkCache,
    path_cache: PathCache,
    pending: Vec<Scenario>,
    stats: EngineStats,
    metrics: Metrics,
    trace: Trace,
    profiler: Profiler,
    frames: EngineFrames,
}

/// The engine's interned activity-frame labels, resolved once when a
/// profiler is attached so the hot paths never touch the frame table.
#[derive(Clone, Copy)]
struct EngineFrames {
    plan: Frame,
    execute: Frame,
    assemble: Frame,
    solver: Frame,
    path_get: Frame,
    link_get: Frame,
    link_insert: Frame,
}

impl EngineFrames {
    fn resolve(profiler: &Profiler, backend: &str) -> EngineFrames {
        EngineFrames {
            plan: profiler.frame("engine.plan"),
            execute: profiler.frame("engine.execute"),
            assemble: profiler.frame("engine.assemble"),
            solver: profiler.frame(&format!("solver.{backend}")),
            path_get: profiler.frame("cache.path_get"),
            link_get: profiler.frame("cache.link_get"),
            link_insert: profiler.frame("cache.link_insert"),
        }
    }
}

impl Engine {
    /// Creates an engine with `workers` solver threads (clamped to at
    /// least one) and the fast analytical backend.
    pub fn new(workers: usize) -> Engine {
        Engine::with_solver(workers, Arc::new(FastSolver))
    }

    /// Creates an engine dispatching path solves through `solver`.
    ///
    /// `workers` is clamped to at least one, and the execute stage
    /// additionally clamps it to the machine's available parallelism
    /// ([`EngineStats::effective_workers`]): the task set is fixed and
    /// CPU-bound, so threads beyond the core count cannot help and
    /// historically made over-provisioned drains *slower* than the
    /// serial loop.
    pub fn with_solver(workers: usize, solver: Arc<dyn Solver>) -> Engine {
        let workers = workers.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let effective_workers = workers.min(cores);
        Engine {
            workers,
            effective_workers,
            solver,
            link_cache: LinkCache::new(),
            path_cache: PathCache::new(),
            pending: Vec::new(),
            stats: EngineStats {
                workers,
                effective_workers,
                ..EngineStats::default()
            },
            metrics: Metrics::disabled(),
            trace: Trace::disabled(),
            profiler: Profiler::disabled(),
            frames: EngineFrames::resolve(&Profiler::disabled(), "none"),
        }
    }

    /// Attaches a metrics registry; every subsequent [`Engine::drain`]
    /// and [`Engine::link_model`] call records cache traffic, stage and
    /// per-scenario solve latencies into it. The default is the
    /// disabled handle, which records nothing and reads no clocks.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The engine's metrics handle (disabled unless
    /// [`Engine::set_metrics`] installed an enabled one).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attaches a trace journal; every subsequent [`Engine::drain`]
    /// records per-scenario spans (with cache-hit/miss annotations),
    /// per-stage spans and the solver backends' provenance events into
    /// it. Worker threads record under their own journal-assigned
    /// thread ids. The default is the disabled handle, which records
    /// nothing, allocates nothing and reads no clocks.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The engine's trace handle (disabled unless [`Engine::set_trace`]
    /// installed an enabled one).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attaches a sampling profiler; every subsequent [`Engine::drain`]
    /// publishes per-stage (`engine.plan` / `engine.execute` /
    /// `engine.assemble`), per-solver (`solver.{backend}`) and cache
    /// (`cache.*`) activity frames on the coordinating and worker
    /// threads, so a concurrent capture can attribute wall time. The
    /// default is the disabled handle, under which every frame push is
    /// a no-op branch.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.frames = EngineFrames::resolve(&profiler, self.solver.name());
        self.profiler = profiler;
    }

    /// The engine's profiler handle (disabled unless
    /// [`Engine::set_profiler`] installed an enabled one).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Bounds the entry counts of the path and link caches (`None`
    /// leaves a cache unbounded). Over-capacity inserts evict
    /// oldest-first and surface in [`EngineStats::path_cache_evictions`]
    /// / [`EngineStats::link_cache_evictions`].
    pub fn set_cache_capacities(&mut self, paths: Option<usize>, links: Option<usize>) {
        self.path_cache.set_capacity(paths);
        self.link_cache.set_capacity(links);
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Engine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Engine::new(workers)
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The name of the solver backend this engine dispatches to.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// Resolves a link-quality specification through the link cache: the
    /// channel-layer derivation (Eqs. 1-2, 4) runs once per distinct
    /// `(kind, value, L, p_rc)` tuple.
    ///
    /// # Errors
    ///
    /// Propagates invalid channel parameters.
    pub fn link_model(&self, spec: &LinkQualitySpec) -> Result<LinkModel> {
        let key = LinkKey::of(spec);
        {
            let _get = self.profiler.enter(self.frames.link_get);
            if let Some(model) = self.link_cache.get(&key) {
                self.metrics.counter("engine.link_cache.hits").increment();
                return Ok(model);
            }
        }
        self.metrics.counter("engine.link_cache.misses").increment();
        let _insert = self.profiler.enter(self.frames.link_insert);
        let model = match *spec {
            LinkQualitySpec::Transitions { p_fl, p_rc } => LinkModel::new(p_fl, p_rc)?,
            LinkQualitySpec::Ber {
                ber,
                message_bits,
                p_rc,
            } => LinkModel::from_ber(ber, message_bits, p_rc)?,
            LinkQualitySpec::Snr {
                snr,
                message_bits,
                p_rc,
            } => LinkModel::from_snr(
                Modulation::Oqpsk,
                EbN0::from_linear(snr),
                message_bits,
                p_rc,
            )?,
            LinkQualitySpec::Availability { availability, p_rc } => {
                LinkModel::from_availability(availability, p_rc)?
            }
        };
        let evicted = self.link_cache.insert(key, model);
        if evicted > 0 {
            self.metrics
                .counter("engine.link_cache.evictions")
                .add(evicted);
        }
        Ok(model)
    }

    /// Enqueues a scenario; returns its submission index, which is also
    /// its position in the next [`Engine::drain`] result.
    pub fn submit(&mut self, scenario: Scenario) -> usize {
        self.stats.jobs_submitted += 1;
        self.pending.push(scenario);
        self.pending.len() - 1
    }

    /// Number of scenarios waiting for the next drain.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Plans, executes and assembles every pending scenario, returning
    /// results in submission order.
    ///
    /// # Errors
    ///
    /// Propagates the first path-model construction failure; the pending
    /// batch is consumed either way.
    pub fn drain(&mut self) -> Result<Vec<ScenarioResult>> {
        let scenarios = std::mem::take(&mut self.pending);

        // Plan: lower each workload to compiled problems, derive canonical
        // signatures, answer warm entries from the cache, deduplicate the
        // rest into a distinct task list. The measure plan is part of the
        // key: a trajectory-requesting scenario must not be answered by a
        // scalar-only cache entry (or vice versa).
        type PathKey = (PathSignature, MeasurePlan);
        let obs = self.metrics.clone();
        let path_hits = obs.counter("engine.path_cache.hits");
        let path_misses = obs.counter("engine.path_cache.misses");
        let compile_hist = obs.histogram("engine.compile_ns");
        let plan_start = Instant::now();
        let plan_guard = self.profiler.enter(self.frames.plan);
        let mut plan_span = self.trace.span("plan", "engine");
        let mut planned_jobs = Vec::with_capacity(scenarios.len());
        let mut resolved: HashMap<PathKey, Arc<PathEvaluation>> = HashMap::new();
        let mut planned: HashMap<PathKey, usize> = HashMap::new();
        let mut tasks: Vec<(PathKey, PathProblem)> = Vec::new();
        // Slot-shift canonicalization: when the backend guarantees
        // bit-identical solves under a common slot shift, scalar-plan
        // problems are cached (and solved) in shift-normalized form and
        // each occurrence rebases the arrival slot at assembly, so
        // schedules differing only by a slot offset share one solve.
        // Tracing pins the real frame slots into hop provenance, so a
        // tracing engine plans the raw problems instead.
        let canonicalize = self.solver.solves_shifted_slots_exactly() && !self.trace.is_enabled();
        for scenario in scenarios {
            let mut scenario_span = self.trace.span("scenario", "engine");
            let mut scenario_hits = 0u64;
            let mut scenario_misses = 0u64;
            let plan = scenario.measures.plan();
            let compile_span = compile_hist.start();
            let problems: Vec<PathProblem> = match &scenario.workload {
                Workload::Network(model) => (0..model.paths().len())
                    .map(|i| model.path_problem(i))
                    .collect::<Result<_>>()?,
                Workload::Paths(models) => models.iter().map(PathModel::compile).collect(),
            };
            compile_span.stop();
            let mut signatures = Vec::with_capacity(problems.len());
            // One frame per scenario, not per path: the loop body is
            // dominated by signature derivation and path-cache lookups.
            let cache_guard = self.profiler.enter(self.frames.path_get);
            for problem in problems {
                // The trajectory plan records per-slot rows, which a
                // slot shift would visibly move — only scalar solves
                // canonicalize.
                let (problem, rebase) = if canonicalize && !plan.goal_trajectory {
                    match problem.shift_normalized() {
                        Some(canonical) => {
                            let arrival = problem.arrival_slot_number();
                            (canonical, Some(arrival))
                        }
                        None => (problem, None),
                    }
                } else {
                    (problem, None)
                };
                let key = (problem.signature(), plan);
                self.stats.paths_requested += 1;
                if planned.contains_key(&key) {
                    self.path_cache.count_shared_hit();
                    path_hits.increment();
                    scenario_hits += 1;
                } else if !resolved.contains_key(&key) {
                    match self.path_cache.get(&key) {
                        Some(evaluation) => {
                            path_hits.increment();
                            scenario_hits += 1;
                            resolved.insert(key.clone(), evaluation);
                        }
                        None => {
                            path_misses.increment();
                            scenario_misses += 1;
                            planned.insert(key.clone(), tasks.len());
                            tasks.push((key.clone(), problem));
                        }
                    }
                } else {
                    self.path_cache.count_shared_hit();
                    path_hits.increment();
                    scenario_hits += 1;
                }
                signatures.push((key, rebase));
            }
            drop(cache_guard);
            if scenario_span.is_recording() {
                scenario_span.arg("label", scenario.label.as_str());
                scenario_span.arg("paths", signatures.len());
                scenario_span.arg("path_cache_hits", scenario_hits);
                scenario_span.arg("path_cache_misses", scenario_misses);
            }
            scenario_span.finish();
            planned_jobs.push((scenario, signatures));
        }
        plan_span.arg("scenarios", planned_jobs.len());
        plan_span.arg("distinct_solves", tasks.len());
        plan_span.finish();
        drop(plan_guard);
        let plan_elapsed = plan_start.elapsed();
        self.stats.plan_wall += plan_elapsed;
        obs.histogram("engine.plan_ns")
            .record(plan_elapsed.as_nanos() as u64);

        // Execute: solve the distinct compiled problems on the worker pool
        // through the engine's solver backend.
        let execute_start = Instant::now();
        let mut execute_span = self.trace.span("execute", "engine");
        let solver = Arc::clone(&self.solver);
        let enabled = obs.is_enabled();
        let trace = self.trace.clone();
        let profiler = self.profiler.clone();
        let frames = self.frames;
        let (solved, pool_stats) = pool::run(
            self.effective_workers,
            tasks,
            |((signature, _), _): &(PathKey, PathProblem)| signature.affinity(),
            // Every executing thread publishes `engine.execute` for its
            // whole task loop, so sampled worker ticks — solving,
            // claiming, stealing — always attribute to the engine.
            |_worker| profiler.enter(frames.execute),
            |((_, plan), problem)| {
                let _solve = profiler.enter(frames.solver);
                let start = enabled.then(Instant::now);
                let result = solver.solve_path_traced(problem, *plan, &obs, &trace);
                (result, start.map(|s| s.elapsed()).unwrap_or_default())
            },
        );
        let backend = self.solver.name();
        let path_solve_hist = obs.histogram(&format!("engine.{backend}.path_solve_ns"));
        let mut evaluations = Vec::with_capacity(solved.len());
        let mut durations = Vec::with_capacity(solved.len());
        for (result, elapsed) in solved {
            evaluations.push(result?);
            durations.push(elapsed);
            path_solve_hist.record(elapsed.as_nanos() as u64);
        }
        let drain_solves = evaluations.len() as u64;
        self.stats.paths_evaluated += drain_solves;
        let evaluations: Vec<Arc<PathEvaluation>> = evaluations.into_iter().map(Arc::new).collect();
        let mut evicted = 0u64;
        for (signature, &index) in &planned {
            let evaluation = Arc::clone(&evaluations[index]);
            evicted += self
                .path_cache
                .insert(signature.clone(), Arc::clone(&evaluation));
            resolved.insert(signature.clone(), evaluation);
        }
        if evicted > 0 {
            obs.counter("engine.path_cache.evictions").add(evicted);
        }
        self.stats.steals += pool_stats.steals;
        self.stats.stolen_tasks += pool_stats.stolen_tasks;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(pool_stats.max_queue_depth);
        obs.counter("engine.pool.steals").add(pool_stats.steals);
        obs.counter("engine.pool.stolen_tasks")
            .add(pool_stats.stolen_tasks);
        obs.gauge("engine.pool.max_queue_depth")
            .record_max(pool_stats.max_queue_depth as u64);
        execute_span.arg("solves", drain_solves);
        execute_span.arg("workers", self.workers);
        execute_span.arg("effective_workers", self.effective_workers);
        // Chunks migrated vs individual solves migrated — see
        // `EngineStats::{steals, stolen_tasks}`.
        execute_span.arg("steals", pool_stats.steals);
        execute_span.arg("stolen_tasks", pool_stats.stolen_tasks);
        execute_span.finish();
        let execute_elapsed = execute_start.elapsed();
        self.stats.execute_wall += execute_elapsed;
        obs.histogram("engine.execute_ns")
            .record(execute_elapsed.as_nanos() as u64);

        // Assemble: per-scenario results in submission order.
        let assemble_start = Instant::now();
        let assemble_guard = self.profiler.enter(self.frames.assemble);
        let mut assemble_span = self.trace.span("assemble", "engine");
        let scenario_hist = obs.histogram(&format!("engine.{backend}.scenario_solve_ns"));
        let mut results = Vec::with_capacity(planned_jobs.len());
        for (scenario, signatures) in planned_jobs {
            // One observation per scenario: the solve time of its
            // distinct path DTMCs in this drain (cache hits cost 0), so
            // the histogram count equals the scenario count.
            if enabled {
                let mut seen: HashSet<&PathKey> = HashSet::with_capacity(signatures.len());
                let mut total = Duration::ZERO;
                for (key, _) in &signatures {
                    if seen.insert(key) {
                        if let Some(&index) = planned.get(key) {
                            total += durations[index];
                        }
                    }
                }
                scenario_hist.record(total.as_nanos() as u64);
            }
            // Shared references until here; each scenario result owns its
            // copy (the one unavoidable deep clone per path occurrence).
            // Canonicalized occurrences re-anchor the shared canonical
            // solve at their real arrival slot (bit-identical elsewhere).
            let evaluations: Vec<Arc<PathEvaluation>> = signatures
                .iter()
                .map(|(s, rebase)| {
                    let evaluation = resolved.get(s).expect("every planned signature resolved");
                    match rebase {
                        Some(arrival) => Arc::new(evaluation.rebased_at_slot(*arrival)),
                        None => Arc::clone(evaluation),
                    }
                })
                .collect();
            let measures = scenario.measures;
            let path_measures = evaluations
                .iter()
                .map(|e| extract_path_measures(e, measures))
                .collect();
            let (outcome, mean_delay_ms, network_utilization) = match scenario.workload {
                Workload::Network(model) => {
                    let reports = model
                        .paths()
                        .iter()
                        .cloned()
                        .zip(evaluations)
                        .map(|(path, evaluation)| PathReport { path, evaluation })
                        .collect();
                    let network = NetworkEvaluation::from_reports(reports);
                    let mean = measures
                        .expected_delay
                        .then(|| network.mean_delay_ms(measures.delay_convention))
                        .flatten();
                    let utilization = measures
                        .utilization
                        .then(|| network.utilization(measures.utilization_convention));
                    (Outcome::Network(network), mean, utilization)
                }
                Workload::Paths(_) => {
                    let owned = evaluations.iter().map(|e| (**e).clone()).collect();
                    (Outcome::Paths(owned), None, None)
                }
            };
            results.push(ScenarioResult {
                label: scenario.label,
                outcome,
                path_measures,
                mean_delay_ms,
                network_utilization,
            });
            self.stats.jobs_completed += 1;
        }
        assemble_span.arg("scenarios", results.len());
        assemble_span.finish();
        drop(assemble_guard);
        let assemble_elapsed = assemble_start.elapsed();
        self.stats.assemble_wall += assemble_elapsed;
        obs.histogram("engine.assemble_ns")
            .record(assemble_elapsed.as_nanos() as u64);

        Ok(results)
    }

    /// A snapshot of the engine's counters, with the cache counters
    /// folded in.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats.clone();
        stats.path_cache_hits = self.path_cache.hits();
        stats.path_cache_misses = self.path_cache.misses();
        stats.link_cache_hits = self.link_cache.hits();
        stats.link_cache_misses = self.link_cache.misses();
        stats.path_cache_evictions = self.path_cache.evictions();
        stats.link_cache_evictions = self.link_cache.evictions();
        stats
    }

    /// Number of distinct path evaluations currently cached.
    pub fn cached_paths(&self) -> usize {
        self.path_cache.len()
    }

    /// Number of distinct link models currently cached.
    pub fn cached_links(&self) -> usize {
        self.link_cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MeasureSet;
    use whart_model::sweeps::{chain_model, section_v_model};
    use whart_net::ReportingInterval;

    #[test]
    fn drain_returns_submission_order_and_counts() {
        let mut engine = Engine::new(2);
        for (i, pi) in [0.83, 0.903, 0.948].iter().enumerate() {
            let model = section_v_model(*pi, ReportingInterval::REGULAR).unwrap();
            engine.submit(Scenario::paths(format!("job-{i}"), vec![model]));
        }
        let results = engine.drain().unwrap();
        assert_eq!(results.len(), 3);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.label, format!("job-{i}"));
        }
        let stats = engine.stats();
        assert_eq!(stats.jobs_submitted, 3);
        assert_eq!(stats.jobs_completed, 3);
        assert_eq!(stats.paths_requested, 3);
        assert_eq!(stats.paths_evaluated, 3);
        assert_eq!(stats.path_cache_misses, 3);
    }

    #[test]
    fn duplicate_scenarios_share_one_solve() {
        let mut engine = Engine::new(2);
        let model = section_v_model(0.83, ReportingInterval::REGULAR).unwrap();
        engine.submit(Scenario::paths("a", vec![model.clone()]));
        engine.submit(Scenario::paths("b", vec![model]));
        let results = engine.drain().unwrap();
        assert_eq!(results.len(), 2);
        let a = results[0].path_evaluations()[0];
        let b = results[1].path_evaluations()[0];
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.paths_evaluated, 1, "one DTMC solve for two scenarios");
        assert_eq!(stats.path_cache_hits, 1);
    }

    #[test]
    fn warm_drain_solves_nothing() {
        let mut engine = Engine::new(2);
        let model = chain_model(2, 0.83, ReportingInterval::REGULAR).unwrap();
        engine.submit(Scenario::paths("cold", vec![model.clone()]));
        engine.drain().unwrap();
        assert_eq!(engine.stats().paths_evaluated, 1);
        engine.submit(Scenario::paths("warm", vec![model]));
        engine.drain().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.paths_evaluated, 1, "warm drain reuses the cache");
        assert_eq!(stats.path_cache_hits, 1);
        assert_eq!(engine.cached_paths(), 1);
    }

    #[test]
    fn hit_ratios_are_none_until_lookups_happen() {
        let mut engine = Engine::new(1);
        assert_eq!(engine.stats().path_cache_hit_ratio(), None);
        assert_eq!(engine.stats().link_cache_hit_ratio(), None);
        let model = chain_model(2, 0.83, ReportingInterval::REGULAR).unwrap();
        engine.submit(Scenario::paths("cold", vec![model.clone()]));
        engine.drain().unwrap();
        engine.submit(Scenario::paths("warm", vec![model]));
        engine.drain().unwrap();
        let ratio = engine.stats().path_cache_hit_ratio().unwrap();
        assert!((ratio - 0.5).abs() < 1e-12, "one hit, one miss: {ratio}");
    }

    #[test]
    fn engine_matches_serial_evaluation() {
        let model = section_v_model(0.774, ReportingInterval::REGULAR).unwrap();
        let serial = model.evaluate();
        let mut engine = Engine::new(4);
        engine.submit(Scenario::paths("x", vec![model]));
        let results = engine.drain().unwrap();
        assert_eq!(results[0].path_evaluations()[0], &serial);
    }

    #[test]
    fn link_cache_deduplicates_derivations() {
        let engine = Engine::new(1);
        let spec = LinkQualitySpec::Ber {
            ber: 1e-4,
            message_bits: 1016,
            p_rc: 0.9,
        };
        let a = engine.link_model(&spec).unwrap();
        let b = engine.link_model(&spec).unwrap();
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.link_cache_hits, 1);
        assert_eq!(stats.link_cache_misses, 1);
        assert_eq!(engine.cached_links(), 1);
    }

    #[test]
    fn measures_respect_the_measure_set() {
        let mut engine = Engine::new(1);
        let model = chain_model(1, 0.9, ReportingInterval::REGULAR).unwrap();
        let measures = MeasureSet {
            reachability: true,
            expected_delay: false,
            expected_intervals_to_first_loss: false,
            utilization: false,
            cycle_probabilities: true,
            ..MeasureSet::default()
        };
        engine.submit(Scenario::paths("m", vec![model]).with_measures(measures));
        let results = engine.drain().unwrap();
        let m = &results[0].path_measures[0];
        assert!(m.reachability.is_some());
        assert!(m.expected_delay_ms.is_none());
        assert!(m.utilization.is_none());
        assert_eq!(m.cycle_probabilities.as_ref().unwrap().len(), 4);
    }
}
