//! whart-engine: a parallel, memoizing batch-evaluation engine for
//! fleets of WirelessHART scenarios.
//!
//! The analytical model solves one DTMC per path per operating point.
//! Parameter studies (Figs. 8-19, Tables I-II of Remke & Wu, DSN 2013)
//! evaluate whole fleets of scenarios that overlap heavily: the same
//! link operating points, and often the very same path DTMCs, recur
//! across scenarios. This crate turns those studies into batch jobs:
//!
//! * [`Scenario`] — a network or a set of path models (overrides and
//!   failure injections already applied) plus requested measures;
//! * [`Engine::submit`] / [`Engine::drain`] — plan every pending
//!   scenario into a deduplicated set of path solves, execute them on a
//!   work-stealing worker pool, and assemble results in submission
//!   order;
//! * two memoization layers — a link-model cache keyed by the canonical
//!   quality tuple `(kind, value, L, p_rc)` and a path-evaluation cache
//!   keyed by the canonical [`whart_model::signature::PathSignature`],
//!   both persistent across drains;
//! * [`EngineStats`] — jobs, per-layer cache hits/misses, per-stage
//!   wall time, steal counts and peak queue depth.
//!
//! Results are bit-identical to the serial evaluator: the caches key on
//! the complete, bit-exact input of each solve, and cached values are
//! returned unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod pool;
mod scenario;
pub mod sweeps;

pub use cache::LinkKey;
pub use engine::{Engine, EngineStats};
pub use scenario::{
    LinkQualitySpec, MeasureSet, Outcome, PathMeasures, Scenario, ScenarioResult, Workload,
};
