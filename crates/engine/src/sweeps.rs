//! Engine-backed mirrors of [`whart_model::sweeps`].
//!
//! Same signatures and bit-identical results as the serial versions, but
//! link models resolve through the engine's link cache and every path
//! solve goes through the deduplicating path cache — a sweep revisiting
//! an operating point (or a second sweep on a warm engine) solves
//! nothing twice.

use whart_channel::{LinkModel, WIRELESSHART_MESSAGE_BITS};
use whart_model::sweeps::{
    chain_model_with_link, section_v_model_with_link, AvailabilityPoint, DelaySummary,
};
use whart_model::{DelayConvention, PathModel, Result};
use whart_net::ReportingInterval;

use crate::engine::Engine;
use crate::scenario::{LinkQualitySpec, Scenario};

/// Evaluates a set of path models through the engine's path cache,
/// returning evaluations in model order.
fn evaluate_all(
    engine: &mut Engine,
    label: &str,
    models: Vec<PathModel>,
) -> Result<Vec<whart_model::PathEvaluation>> {
    engine.submit(Scenario::paths(label, models));
    let mut results = engine.drain()?;
    let result = results.pop().expect("one scenario drained");
    match result.outcome {
        crate::scenario::Outcome::Paths(evaluations) => Ok(evaluations),
        crate::scenario::Outcome::Network(_) => unreachable!("paths workload"),
    }
}

/// Engine-backed [`whart_model::sweeps::sweep_availability`].
///
/// # Errors
///
/// Propagates model construction failures for out-of-range
/// availabilities.
pub fn sweep_availability(
    engine: &mut Engine,
    availabilities: &[f64],
    interval: ReportingInterval,
) -> Result<Vec<AvailabilityPoint>> {
    let links: Vec<LinkModel> = availabilities
        .iter()
        .map(|&availability| engine.link_model(&LinkQualitySpec::availability(availability)))
        .collect::<Result<_>>()?;
    let models: Vec<PathModel> = links
        .iter()
        .map(|&link| section_v_model_with_link(link, interval))
        .collect::<Result<_>>()?;
    let evaluations = evaluate_all(engine, "sweep_availability", models)?;
    Ok(availabilities
        .iter()
        .zip(links)
        .zip(evaluations)
        .map(|((&availability, link), evaluation)| AvailabilityPoint {
            availability,
            ber: whart_channel::ber_from_failure_probability(
                link.p_fl(),
                WIRELESSHART_MESSAGE_BITS,
            ),
            evaluation,
        })
        .collect())
}

/// Engine-backed [`whart_model::sweeps::sweep_hop_count`].
///
/// # Errors
///
/// Propagates model construction failures.
pub fn sweep_hop_count(
    engine: &mut Engine,
    max_hops: u32,
    availability: f64,
    interval: ReportingInterval,
) -> Result<Vec<(u32, f64)>> {
    let link = engine.link_model(&LinkQualitySpec::availability(availability))?;
    let models: Vec<PathModel> = (1..=max_hops)
        .map(|hops| chain_model_with_link(hops, link, interval))
        .collect::<Result<_>>()?;
    let evaluations = evaluate_all(engine, "sweep_hop_count", models)?;
    Ok((1..=max_hops)
        .zip(evaluations.iter().map(|e| e.reachability()))
        .collect())
}

/// Engine-backed [`whart_model::sweeps::sweep_interval`].
///
/// # Errors
///
/// Propagates failures from `build`.
pub fn sweep_interval<F>(
    engine: &mut Engine,
    intervals: &[u32],
    mut build: F,
) -> Result<Vec<(u32, f64)>>
where
    F: FnMut(ReportingInterval) -> Result<PathModel>,
{
    let models: Vec<PathModel> = intervals
        .iter()
        .map(|&is| build(ReportingInterval::new(is)?))
        .collect::<Result<_>>()?;
    let evaluations = evaluate_all(engine, "sweep_interval", models)?;
    Ok(intervals
        .iter()
        .copied()
        .zip(evaluations.iter().map(|e| e.reachability()))
        .collect())
}

/// Engine-backed [`whart_model::sweeps::delay_summaries`].
///
/// # Errors
///
/// Propagates model construction failures.
pub fn delay_summaries(
    engine: &mut Engine,
    availabilities: &[f64],
    interval: ReportingInterval,
    convention: DelayConvention,
) -> Result<Vec<DelaySummary>> {
    Ok(sweep_availability(engine, availabilities, interval)?
        .into_iter()
        .map(|point| DelaySummary {
            availability: point.availability,
            reachability_percent: point.evaluation.reachability() * 100.0,
            distribution: point.evaluation.delay_distribution(convention),
            expected_delay_ms: point
                .evaluation
                .expected_delay_ms(convention)
                .unwrap_or(f64::NAN),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_model::sweeps as serial;
    use whart_model::sweeps::paper_availabilities;

    #[test]
    fn sweep_availability_is_bit_identical_to_serial() {
        let mut engine = Engine::new(2);
        let pis = paper_availabilities();
        let ours = sweep_availability(&mut engine, &pis, ReportingInterval::REGULAR).unwrap();
        let reference = serial::sweep_availability(&pis, ReportingInterval::REGULAR).unwrap();
        assert_eq!(ours, reference);
    }

    #[test]
    fn sweep_hop_count_is_bit_identical_to_serial() {
        let mut engine = Engine::new(2);
        let ours = sweep_hop_count(&mut engine, 4, 0.83, ReportingInterval::REGULAR).unwrap();
        let reference = serial::sweep_hop_count(4, 0.83, ReportingInterval::REGULAR).unwrap();
        assert_eq!(ours, reference);
    }

    #[test]
    fn sweep_interval_is_bit_identical_to_serial() {
        let mut engine = Engine::new(2);
        let ours = sweep_interval(&mut engine, &[1, 2, 4], |is| {
            serial::chain_model(1, 0.903, is)
        })
        .unwrap();
        let reference =
            serial::sweep_interval(&[1, 2, 4], |is| serial::chain_model(1, 0.903, is)).unwrap();
        assert_eq!(ours, reference);
    }

    #[test]
    fn delay_summaries_are_bit_identical_and_cached() {
        let mut engine = Engine::new(2);
        let pis = paper_availabilities();
        let ours = delay_summaries(
            &mut engine,
            &pis,
            ReportingInterval::REGULAR,
            DelayConvention::Absolute,
        )
        .unwrap();
        let reference =
            serial::delay_summaries(&pis, ReportingInterval::REGULAR, DelayConvention::Absolute)
                .unwrap();
        assert_eq!(ours, reference);
        // A second engine-backed sweep answers entirely from the cache.
        let evaluated = engine.stats().paths_evaluated;
        delay_summaries(
            &mut engine,
            &pis,
            ReportingInterval::REGULAR,
            DelayConvention::Absolute,
        )
        .unwrap();
        assert_eq!(engine.stats().paths_evaluated, evaluated);
    }
}
