//! The engine's two memoization layers.
//!
//! * [`LinkCache`] — link-model derivation keyed by the canonical quality
//!   tuple `(kind, value, L, p_rc)`. The BER and SNR constructors run the
//!   channel-layer math (Eqs. 1-2) once per distinct operating point.
//! * [`PathCache`] — path evaluations keyed by the canonical
//!   [`PathSignature`] (derived from the compiled
//!   [`whart_model::PathProblem`]) paired with the requested
//!   [`MeasurePlan`]; a fleet that revisits a path DTMC (same hop
//!   dynamics, slots, super-frame, `Is` and TTL, same artifact demand)
//!   solves it exactly once.
//!
//! Both caches are sharded by key hash: lookups touch only the owning
//! shard's `RwLock` (concurrent warm reads on different shards — or even
//! the same shard — never serialize on one global mutex), while the FIFO
//! eviction order and capacity bound stay global, so the eviction
//! *victims* are identical for every shard count and the hit / miss /
//! eviction counters remain bit-for-bit what the single-mutex cache
//! reported.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use whart_channel::LinkModel;
use whart_model::signature::PathSignature;
use whart_model::{MeasurePlan, PathEvaluation};

use crate::scenario::LinkQualitySpec;

/// Canonical key of a link-quality specification: the variant kind, the
/// bit-exact parameter value, the message length in bits (where the
/// variant uses one) and the recovery probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkKey {
    kind: u8,
    value_bits: u64,
    message_bits: u32,
    p_rc_bits: u64,
}

fn bits(value: f64) -> u64 {
    if value == 0.0 {
        0.0f64.to_bits()
    } else {
        value.to_bits()
    }
}

impl LinkKey {
    /// Derives the canonical key of a quality specification.
    pub fn of(spec: &LinkQualitySpec) -> LinkKey {
        match *spec {
            LinkQualitySpec::Transitions { p_fl, p_rc } => LinkKey {
                kind: 0,
                value_bits: bits(p_fl),
                message_bits: 0,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Ber {
                ber,
                message_bits,
                p_rc,
            } => LinkKey {
                kind: 1,
                value_bits: bits(ber),
                message_bits,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Snr {
                snr,
                message_bits,
                p_rc,
            } => LinkKey {
                kind: 2,
                value_bits: bits(snr),
                message_bits,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Availability { availability, p_rc } => LinkKey {
                kind: 3,
                value_bits: bits(availability),
                message_bits: 0,
                p_rc_bits: bits(p_rc),
            },
        }
    }
}

/// Default shard count: enough to spread concurrent readers, small
/// enough that empty shards cost nothing noticeable.
const DEFAULT_SHARDS: usize = 8;

/// The global (cross-shard) eviction state: the FIFO insertion order and
/// the optional capacity bound. Only writers take this lock, and always
/// *before* any shard lock, so the lock order is acyclic with readers
/// that take only their shard.
struct OrderState<K> {
    order: VecDeque<K>,
    capacity: Option<usize>,
}

/// A memoized map sharded by key hash, with hit/miss/eviction counters
/// readable without locking and an optional global capacity bound with
/// FIFO eviction (unbounded by default).
///
/// Reads take a single shard's `RwLock` read guard — the warm fast
/// path: concurrent lookups never contend on a writer lock or on other
/// shards. Inserts serialize on the order lock (they are rare: one per
/// distinct solve), update the owning shard under its write lock, and
/// evict the *globally* oldest entries while over capacity, so the
/// eviction victims — like every counter — are independent of the shard
/// count.
pub(crate) struct CountedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    order: Mutex<OrderState<K>>,
    len: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> CountedCache<K, V> {
    pub(crate) fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (minimum 1). Behavior —
    /// results, counters, eviction victims — is identical for every
    /// shard count; only the lock granularity changes. The shard-count
    /// invariance is pinned by a property test below.
    pub(crate) fn with_shards(shards: usize) -> Self {
        CountedCache {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            order: Mutex::new(OrderState {
                order: VecDeque::new(),
                capacity: None,
            }),
            len: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The shard owning `key`. The hash is deterministic (fixed-key
    /// `DefaultHasher`), and for [`PathSignature`] keys it reuses the
    /// signature's precomputed content hash.
    fn shard_of(&self, key: &K) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Bounds (or unbounds, with `None`) the entry count. A bound of 0
    /// is treated as 1 — the cache always holds the entry just
    /// inserted. Shrinking below the current size evicts oldest-first
    /// on the next insert.
    pub(crate) fn set_capacity(&self, capacity: Option<usize>) {
        self.order.lock().expect("cache order lock").capacity = capacity;
    }

    /// Looks up `key`, counting a hit or a miss. Touches only the owning
    /// shard, under a read guard.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let shard = self.shards[self.shard_of(key)]
            .read()
            .expect("cache shard lock");
        match shard.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed value (does not touch the hit/miss
    /// counters), evicting globally-oldest entries while over capacity.
    /// Returns how many entries were evicted.
    pub(crate) fn insert(&self, key: K, value: V) -> u64 {
        let mut state = self.order.lock().expect("cache order lock");
        let fresh = self.shards[self.shard_of(&key)]
            .write()
            .expect("cache shard lock")
            .insert(key.clone(), value)
            .is_none();
        if fresh {
            state.order.push_back(key);
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        let Some(capacity) = state.capacity else {
            return 0;
        };
        let capacity = capacity.max(1);
        let mut evicted = 0u64;
        while self.len.load(Ordering::Relaxed) > capacity {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            if self.shards[self.shard_of(&oldest)]
                .write()
                .expect("cache shard lock")
                .remove(&oldest)
                .is_some()
            {
                self.len.fetch_sub(1, Ordering::Relaxed);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Records a hit satisfied outside the map itself — the engine uses
    /// this when an in-batch duplicate shares a solve planned moments
    /// earlier in the same drain (the solve has not landed in the map
    /// yet, so `get` would miscount it as a second miss).
    pub(crate) fn count_shared_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

/// The link-model memoization layer.
pub(crate) type LinkCache = CountedCache<LinkKey, LinkModel>;

/// The path-evaluation memoization layer. Entries are shared behind an
/// [`Arc`]: a cache hit hands out a reference, not a copy of the
/// evaluation, so warm drains never deep-clone until a scenario result
/// materializes its own copy. The [`MeasurePlan`] is part of the key:
/// scalar-only entries hold `O(Is)` cycle PMFs, while trajectory entries
/// additionally carry the `O(Is^2 * F_up)` goal trajectory — the two must
/// not answer for each other.
pub(crate) type PathCache = CountedCache<(PathSignature, MeasurePlan), Arc<PathEvaluation>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_cache_counts() {
        let cache: CountedCache<u32, u32> = CountedCache::new();
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache: CountedCache<u32, u32> = CountedCache::new();
        cache.set_capacity(Some(2));
        assert_eq!(cache.insert(1, 10), 0);
        assert_eq!(cache.insert(2, 20), 0);
        assert_eq!(cache.insert(3, 30), 1, "one eviction over capacity");
        assert_eq!(cache.get(&1), None, "oldest entry evicted");
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        // Re-inserting an existing key is an update, not growth.
        assert_eq!(cache.insert(3, 31), 0);
        assert_eq!(cache.get(&3), Some(31));
        // A zero capacity still retains the latest entry.
        cache.set_capacity(Some(0));
        cache.insert(4, 40);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&4), Some(40));
        // Unbounding stops eviction.
        cache.set_capacity(None);
        cache.insert(5, 50);
        cache.insert(6, 60);
        assert_eq!(cache.len(), 3);
    }

    /// One step of a scripted cache workload for the shard-invariance
    /// property test.
    #[derive(Debug, Clone)]
    enum Op {
        Get(u32),
        Insert(u32, u32),
        SetCapacity(Option<usize>),
    }

    /// Every observable output of a replayed workload, in order: the
    /// result of each get, the eviction count of each insert, and the
    /// final (hits, misses, evictions, len).
    type ReplayLog = (Vec<Option<u32>>, Vec<u64>, (u64, u64, u64, usize));

    fn replay(cache: &CountedCache<u32, u32>, ops: &[Op]) -> ReplayLog {
        let mut gets = Vec::new();
        let mut evictions = Vec::new();
        for op in ops {
            match *op {
                Op::Get(k) => gets.push(cache.get(&k)),
                Op::Insert(k, v) => evictions.push(cache.insert(k, v)),
                Op::SetCapacity(c) => cache.set_capacity(c),
            }
        }
        (
            gets,
            evictions,
            (cache.hits(), cache.misses(), cache.evictions(), cache.len()),
        )
    }

    use proptest::prelude::*;

    proptest! {
        /// Sharding is an implementation detail: under any scripted
        /// access sequence, a 1-shard cache and an N-shard cache return
        /// the same get results, evict the same victims at the same
        /// steps, and end with identical hit/miss/eviction counters.
        #[test]
        fn shard_count_is_unobservable(
            ops in proptest::collection::vec(
                ((0u8..10), (0u32..24), (0u32..1000)).prop_map(|(sel, k, v)| match sel {
                    0..=3 => Op::Get(k),
                    4..=7 => Op::Insert(k, v),
                    8 => Op::SetCapacity(None),
                    _ => Op::SetCapacity(Some((v % 6) as usize)),
                }),
                0..80usize,
            ),
            shards in 2usize..9,
        ) {
            let single: CountedCache<u32, u32> = CountedCache::with_shards(1);
            let sharded: CountedCache<u32, u32> = CountedCache::with_shards(shards);
            prop_assert_eq!(replay(&single, &ops), replay(&sharded, &ops));
        }
    }

    #[test]
    fn concurrent_hammering_loses_no_counter_updates() {
        let cache: Arc<CountedCache<u64, u64>> = Arc::new(CountedCache::new());
        const THREADS: u64 = 8;
        const OPS: u64 = 500;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = (t * OPS + i) % 64;
                        if cache.get(&key).is_none() {
                            cache.insert(key, key * 2);
                        }
                    }
                });
            }
        });
        // Every lookup counted exactly once — no lost hit/miss updates
        // under contention — and the map holds every touched key.
        assert_eq!(cache.hits() + cache.misses(), THREADS * OPS);
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.evictions(), 0);
        for key in 0..64 {
            assert_eq!(cache.get(&key), Some(key * 2));
        }
    }

    #[test]
    fn link_keys_distinguish_kind_and_value() {
        let avail = LinkQualitySpec::Availability {
            availability: 0.83,
            p_rc: 0.9,
        };
        let ber = LinkQualitySpec::Ber {
            ber: 0.83,
            message_bits: 1016,
            p_rc: 0.9,
        };
        assert_ne!(LinkKey::of(&avail), LinkKey::of(&ber));
        let other = LinkQualitySpec::Availability {
            availability: 0.84,
            p_rc: 0.9,
        };
        assert_ne!(LinkKey::of(&avail), LinkKey::of(&other));
        assert_eq!(LinkKey::of(&avail), LinkKey::of(&avail.clone()));
    }
}
