//! The engine's two memoization layers.
//!
//! * [`LinkCache`] — link-model derivation keyed by the canonical quality
//!   tuple `(kind, value, L, p_rc)`. The BER and SNR constructors run the
//!   channel-layer math (Eqs. 1-2) once per distinct operating point.
//! * [`PathCache`] — path evaluations keyed by the canonical
//!   [`PathSignature`] (derived from the compiled
//!   [`whart_model::PathProblem`]) paired with the requested
//!   [`MeasurePlan`]; a fleet that revisits a path DTMC (same hop
//!   dynamics, slots, super-frame, `Is` and TTL, same artifact demand)
//!   solves it exactly once.
//!
//! Both caches are guarded by plain mutexes: entries are tiny relative to
//! the DTMC solves they amortize, and the engine only touches them during
//! the (serial) plan and assemble stages.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use whart_channel::LinkModel;
use whart_model::signature::PathSignature;
use whart_model::{MeasurePlan, PathEvaluation};

use crate::scenario::LinkQualitySpec;

/// Canonical key of a link-quality specification: the variant kind, the
/// bit-exact parameter value, the message length in bits (where the
/// variant uses one) and the recovery probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkKey {
    kind: u8,
    value_bits: u64,
    message_bits: u32,
    p_rc_bits: u64,
}

fn bits(value: f64) -> u64 {
    if value == 0.0 {
        0.0f64.to_bits()
    } else {
        value.to_bits()
    }
}

impl LinkKey {
    /// Derives the canonical key of a quality specification.
    pub fn of(spec: &LinkQualitySpec) -> LinkKey {
        match *spec {
            LinkQualitySpec::Transitions { p_fl, p_rc } => LinkKey {
                kind: 0,
                value_bits: bits(p_fl),
                message_bits: 0,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Ber {
                ber,
                message_bits,
                p_rc,
            } => LinkKey {
                kind: 1,
                value_bits: bits(ber),
                message_bits,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Snr {
                snr,
                message_bits,
                p_rc,
            } => LinkKey {
                kind: 2,
                value_bits: bits(snr),
                message_bits,
                p_rc_bits: bits(p_rc),
            },
            LinkQualitySpec::Availability { availability, p_rc } => LinkKey {
                kind: 3,
                value_bits: bits(availability),
                message_bits: 0,
                p_rc_bits: bits(p_rc),
            },
        }
    }
}

/// The guarded interior of a [`CountedCache`]: the map, the FIFO
/// insertion order (for eviction) and the optional capacity bound.
struct Entries<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: Option<usize>,
}

/// A memoized map with hit/miss/eviction counters readable without
/// locking, and an optional capacity bound with FIFO eviction
/// (unbounded by default).
pub(crate) struct CountedCache<K, V> {
    entries: Mutex<Entries<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> CountedCache<K, V> {
    pub(crate) fn new() -> Self {
        CountedCache {
            entries: Mutex::new(Entries {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: None,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Bounds (or unbounds, with `None`) the entry count. A bound of 0
    /// is treated as 1 — the cache always holds the entry just
    /// inserted. Shrinking below the current size evicts oldest-first
    /// on the next insert.
    pub(crate) fn set_capacity(&self, capacity: Option<usize>) {
        self.entries.lock().expect("cache lock").capacity = capacity;
    }

    /// Looks up `key`, counting a hit or a miss.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let entries = self.entries.lock().expect("cache lock");
        match entries.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed value (does not touch the hit/miss
    /// counters), evicting oldest entries while over capacity. Returns
    /// how many entries were evicted.
    pub(crate) fn insert(&self, key: K, value: V) -> u64 {
        let mut entries = self.entries.lock().expect("cache lock");
        if entries.map.insert(key.clone(), value).is_none() {
            entries.order.push_back(key);
        }
        let Some(capacity) = entries.capacity else {
            return 0;
        };
        let capacity = capacity.max(1);
        let mut evicted = 0u64;
        while entries.map.len() > capacity {
            let Some(oldest) = entries.order.pop_front() else {
                break;
            };
            if entries.map.remove(&oldest).is_some() {
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Records a hit satisfied outside the map itself — the engine uses
    /// this when an in-batch duplicate shares a solve planned moments
    /// earlier in the same drain (the solve has not landed in the map
    /// yet, so `get` would miscount it as a second miss).
    pub(crate) fn count_shared_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").map.len()
    }
}

/// The link-model memoization layer.
pub(crate) type LinkCache = CountedCache<LinkKey, LinkModel>;

/// The path-evaluation memoization layer. Entries are shared behind an
/// [`Arc`]: a cache hit hands out a reference, not a copy of the
/// evaluation, so warm drains never deep-clone until a scenario result
/// materializes its own copy. The [`MeasurePlan`] is part of the key:
/// scalar-only entries hold `O(Is)` cycle PMFs, while trajectory entries
/// additionally carry the `O(Is^2 * F_up)` goal trajectory — the two must
/// not answer for each other.
pub(crate) type PathCache = CountedCache<(PathSignature, MeasurePlan), Arc<PathEvaluation>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_cache_counts() {
        let cache: CountedCache<u32, u32> = CountedCache::new();
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache: CountedCache<u32, u32> = CountedCache::new();
        cache.set_capacity(Some(2));
        assert_eq!(cache.insert(1, 10), 0);
        assert_eq!(cache.insert(2, 20), 0);
        assert_eq!(cache.insert(3, 30), 1, "one eviction over capacity");
        assert_eq!(cache.get(&1), None, "oldest entry evicted");
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        // Re-inserting an existing key is an update, not growth.
        assert_eq!(cache.insert(3, 31), 0);
        assert_eq!(cache.get(&3), Some(31));
        // A zero capacity still retains the latest entry.
        cache.set_capacity(Some(0));
        cache.insert(4, 40);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&4), Some(40));
        // Unbounding stops eviction.
        cache.set_capacity(None);
        cache.insert(5, 50);
        cache.insert(6, 60);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn link_keys_distinguish_kind_and_value() {
        let avail = LinkQualitySpec::Availability {
            availability: 0.83,
            p_rc: 0.9,
        };
        let ber = LinkQualitySpec::Ber {
            ber: 0.83,
            message_bits: 1016,
            p_rc: 0.9,
        };
        assert_ne!(LinkKey::of(&avail), LinkKey::of(&ber));
        let other = LinkQualitySpec::Availability {
            availability: 0.84,
            p_rc: 0.9,
        };
        assert_ne!(LinkKey::of(&avail), LinkKey::of(&other));
        assert_eq!(LinkKey::of(&avail), LinkKey::of(&avail.clone()));
    }
}
