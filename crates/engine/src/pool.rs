//! A scoped worker pool with chunked, affinity-partitioned scheduling.
//!
//! The task set is fixed up front (path solves never spawn new path
//! solves), so instead of mutex-guarded deques the pool pre-partitions
//! item indices onto workers by an affinity hash (cache-affine work
//! lands on the same worker), splits each worker's share into chunks,
//! and lets workers claim chunks with a single `fetch_add` on the
//! owner's atomic cursor — their own first, then whole chunks from the
//! most-loaded sibling. Results travel back through each worker's join
//! handle and are scattered once into a pre-sized slice, so the hot
//! path takes no locks at all. Built on `std::thread::scope` — no
//! external runtime.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How many chunks each worker's share is split into: small enough that
/// a chunk is worth migrating, large enough that stealing can rebalance
/// a skewed partition.
const CHUNKS_PER_WORKER: usize = 4;

/// Counters observed while a batch executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Peak length of any single worker queue (tasks not yet started) —
    /// with up-front partitioning, the largest initial share.
    pub max_queue_depth: usize,
    /// Number of *chunks* a worker claimed from a sibling's share.
    /// Stealing migrates whole chunks, so this counts migrations, not
    /// tasks; see [`PoolStats::stolen_tasks`] for the task count.
    pub steals: u64,
    /// Number of *tasks* (scenarios / path solves) that ran on a worker
    /// other than the one their affinity assigned them to — the sum of
    /// the sizes of all stolen chunks.
    pub stolen_tasks: u64,
}

/// One worker's share of the batch: the item indices its affinity class
/// mapped to, cut into `chunk`-sized runs claimed via `next`.
struct Share {
    indices: Vec<usize>,
    chunk: usize,
    chunks: usize,
    next: AtomicUsize,
}

impl Share {
    fn new(indices: Vec<usize>) -> Share {
        let chunk = indices.len().div_ceil(CHUNKS_PER_WORKER).max(1);
        let chunks = indices.len().div_ceil(chunk);
        Share {
            indices,
            chunk,
            chunks,
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next unclaimed chunk (a single `fetch_add`), or `None`
    /// when the share is exhausted.
    fn claim(&self) -> Option<&[usize]> {
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        if c >= self.chunks {
            return None;
        }
        let start = c * self.chunk;
        Some(&self.indices[start..(start + self.chunk).min(self.indices.len())])
    }

    /// Chunks not yet claimed (racy, used only to pick a steal victim).
    fn remaining(&self) -> usize {
        self.chunks
            .saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

/// Runs `f` over every item on `workers` threads, returning results in
/// item order plus the observed pool counters. `affinity` partitions
/// items onto workers (`affinity % workers`): items sharing an affinity
/// value always start on the same worker, so signature-affine work
/// shares that worker's warm cache lines unless stealing rebalances.
///
/// `worker_scope` runs once per executing thread before it claims any
/// work and its return value is held for the thread's whole task loop —
/// the engine uses it to publish an `engine.execute` profiler frame, so
/// every sampled tick on a worker (solving, claiming, stealing) is
/// attributed to the execute stage. On the serial fallback it wraps the
/// in-place loop on the calling thread. Worker threads are named
/// `whart-worker-{i}` so profiles and debuggers can tell them apart.
pub(crate) fn run<T, R, F, A, S, G>(
    workers: usize,
    items: Vec<T>,
    affinity: A,
    worker_scope: S,
    f: F,
) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    A: Fn(&T) -> u64,
    S: Fn(usize) -> G + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        let scope = worker_scope(0);
        let results = items.iter().map(&f).collect();
        drop(scope);
        return (
            results,
            PoolStats {
                max_queue_depth: n,
                steals: 0,
                stolen_tasks: 0,
            },
        );
    }

    // Partition item indices by affinity class.
    let mut assigned: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.iter().enumerate() {
        assigned[(affinity(item) % workers as u64) as usize].push(i);
    }
    let max_queue_depth = assigned.iter().map(Vec::len).max().unwrap_or(0);
    let shares: Vec<Share> = assigned.into_iter().map(Share::new).collect();
    let steals = AtomicU64::new(0);
    let stolen_tasks = AtomicU64::new(0);

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for me in 0..workers {
            let shares = &shares;
            let steals = &steals;
            let stolen_tasks = &stolen_tasks;
            let f = &f;
            let items = &items;
            let worker_scope = &worker_scope;
            let builder = std::thread::Builder::new().name(format!("whart-worker-{me}"));
            let handle = builder.spawn_scoped(scope, move || {
                let _scope = worker_scope(me);
                let mut out: Vec<(usize, R)> = Vec::new();
                // Drain the worker's own share first (affinity order).
                while let Some(chunk) = shares[me].claim() {
                    out.extend(chunk.iter().map(|&i| (i, f(&items[i]))));
                }
                // Then steal whole chunks from the most-loaded sibling
                // until every share is exhausted. A lost claim race just
                // re-picks a victim; cursors only grow, so this
                // terminates.
                loop {
                    let victim = (0..workers)
                        .filter(|&w| w != me)
                        .max_by_key(|&w| shares[w].remaining());
                    match victim {
                        Some(v) if shares[v].remaining() > 0 => {
                            if let Some(chunk) = shares[v].claim() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                stolen_tasks.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                                out.extend(chunk.iter().map(|&i| (i, f(&items[i]))));
                            }
                        }
                        _ => break,
                    }
                }
                out
            });
            handles.push(handle.expect("spawn pool worker thread"));
        }
        // Scatter every worker's results into the pre-sized slice — the
        // only writer is this thread, after the workers have joined, so
        // no per-result synchronization is needed.
        for handle in handles {
            for (i, r) in handle.join().expect("pool workers do not panic") {
                results[i] = Some(r);
            }
        }
    });

    let results = results
        .into_iter()
        .map(|slot| slot.expect("every task ran"))
        .collect();
    let stats = PoolStats {
        max_queue_depth,
        steals: steals.load(Ordering::Relaxed),
        stolen_tasks: stolen_tasks.load(Ordering::Relaxed),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spread items round-robin, like the pre-chunking pool dealt them.
    fn round_robin(x: &u64) -> u64 {
        *x
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let (results, stats) = run(4, items, round_robin, |_| (), |&x| x * x);
        assert_eq!(results, (0..100).map(|x| x * x).collect::<Vec<_>>());
        assert!(stats.max_queue_depth >= 25);
    }

    #[test]
    fn serial_fallback_matches() {
        let (results, stats) = run(1, vec![1, 2, 3], |&x| x, |_| (), |&x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.stolen_tasks, 0);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let (results, _) = run(8, Vec::<u32>::new(), |&x| x.into(), |_| (), |&x| x);
        assert!(results.is_empty());
        let (results, _) = run(8, vec![7u32], |&x| x.into(), |_| (), |&x| x * 2);
        assert_eq!(results, vec![14]);
    }

    #[test]
    fn affinity_classes_start_on_their_worker() {
        // All items share one affinity class, so one worker owns the
        // whole batch up front and the peak queue depth is the batch.
        let items: Vec<u64> = (0..64).collect();
        let (results, stats) = run(4, items, |_| 7, |_| (), |&x| x + 1);
        assert_eq!(results, (1..=64).collect::<Vec<_>>());
        assert_eq!(stats.max_queue_depth, 64);
    }

    #[test]
    fn uneven_workloads_get_stolen() {
        // Worker 0's own tasks are slow; the cheap ones land elsewhere but
        // finish instantly, so its siblings steal from it.
        let items: Vec<u64> = (0..32).collect();
        let (results, stats) = run(
            4,
            items,
            round_robin,
            |_| (),
            |&x| {
                if x % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x
            },
        );
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        // Chunk counts and task counts stay consistent: every stolen
        // chunk moves at least one task.
        assert!(stats.stolen_tasks >= stats.steals);
    }
}
