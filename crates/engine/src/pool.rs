//! A scoped work-stealing worker pool over a fixed task set.
//!
//! Tasks are dealt round-robin onto per-worker deques; a worker pops from
//! the back of its own deque and, when empty, steals from the front of
//! the longest sibling deque. The task set is fixed up front (path solves
//! never spawn new path solves), so termination is simply "every deque is
//! empty". Built on `std::thread::scope` — no external runtime.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters observed while a batch executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Peak length of any single worker queue (tasks not yet started).
    pub max_queue_depth: usize,
    /// Number of tasks a worker took from a sibling's queue.
    pub steals: u64,
}

/// Runs `f` over every item on `workers` threads, returning results in
/// item order plus the observed pool counters.
pub(crate) fn run<T, R, F>(workers: usize, items: Vec<T>, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        let depth = n;
        let results = items.iter().map(&f).collect();
        return (
            results,
            PoolStats {
                max_queue_depth: depth,
                steals: 0,
            },
        );
    }

    // Deal tasks round-robin; queues hold indices into `items`.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, queue) in (0..n).zip((0..workers).cycle()) {
        queues[queue].lock().expect("queue lock").push_back(i);
    }
    let max_depth = AtomicUsize::new(queues[0].lock().expect("queue lock").len());
    let steals = AtomicU64::new(0);

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let max_depth = &max_depth;
            let f = &f;
            let items = &items;
            handles.push(scope.spawn(move || loop {
                // Own queue first (LIFO keeps the working set warm)...
                let mut task = queues[me].lock().expect("queue lock").pop_back();
                // ...then steal from the front of the longest sibling.
                if task.is_none() {
                    let victim = (0..workers)
                        .filter(|&w| w != me)
                        .max_by_key(|&w| queues[w].lock().expect("queue lock").len());
                    if let Some(victim) = victim {
                        task = queues[victim].lock().expect("queue lock").pop_front();
                        if task.is_some() {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let Some(index) = task else { break };
                let depth = queues[me].lock().expect("queue lock").len();
                max_depth.fetch_max(depth, Ordering::Relaxed);
                let result = f(&items[index]);
                *slots[index].lock().expect("slot lock") = Some(result);
            }));
        }
        for handle in handles {
            handle.join().expect("pool workers do not panic");
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every task ran")
        })
        .collect();
    let stats = PoolStats {
        max_queue_depth: max_depth.load(Ordering::Relaxed).max(n.div_ceil(workers)),
        steals: steals.load(Ordering::Relaxed),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let (results, stats) = run(4, items, |&x| x * x);
        assert_eq!(results, (0..100).map(|x| x * x).collect::<Vec<_>>());
        assert!(stats.max_queue_depth >= 25);
    }

    #[test]
    fn serial_fallback_matches() {
        let (results, stats) = run(1, vec![1, 2, 3], |&x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let (results, _) = run(8, Vec::<u32>::new(), |&x| x);
        assert!(results.is_empty());
        let (results, _) = run(8, vec![7], |&x| x * 2);
        assert_eq!(results, vec![14]);
    }

    #[test]
    fn uneven_workloads_get_stolen() {
        // Worker 0's own tasks are slow; the cheap ones land elsewhere but
        // finish instantly, so its siblings steal from it.
        let items: Vec<u64> = (0..32).collect();
        let (results, _) = run(4, items, |&x| {
            if x % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(results.len(), 32);
    }
}
