//! Tracing must never perturb results: for every solver backend, a
//! traced drain returns bit-identical evaluations to an untraced one,
//! and the journal carries the expected span/provenance structure.

use std::sync::Arc;

use whart_engine::{Engine, Scenario};
use whart_model::sweeps::section_v_model;
use whart_model::{ExplicitSolver, FastSolver, Solver};
use whart_net::ReportingInterval;
use whart_sim::MonteCarloSolver;
use whart_trace::Trace;

fn fleet() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (i, pi) in [0.83, 0.903, 0.948, 0.83].iter().enumerate() {
        let model = section_v_model(*pi, ReportingInterval::REGULAR).unwrap();
        scenarios.push(Scenario::paths(format!("s-{i}"), vec![model]));
    }
    scenarios
}

fn assert_traced_drain_is_bit_identical(make_solver: impl Fn() -> Arc<dyn Solver>) -> Trace {
    let mut plain = Engine::with_solver(2, make_solver());
    let mut traced = Engine::with_solver(2, make_solver());
    let trace = Trace::new();
    traced.set_trace(trace.clone());
    for scenario in fleet() {
        plain.submit(scenario.clone());
        traced.submit(scenario);
    }
    let a = plain.drain().unwrap();
    let b = traced.drain().unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.path_evaluations(), y.path_evaluations());
    }
    trace
}

#[test]
fn fast_backend_results_are_bit_identical_with_tracing_enabled() {
    let trace = assert_traced_drain_is_bit_identical(|| Arc::new(FastSolver));
    let log = trace.drain();
    // 4 scenarios planned, 3 distinct solves (one operating point repeats).
    assert_eq!(log.named("scenario").count(), 4);
    let solves: Vec<_> = log.named("path_solve").collect();
    assert_eq!(solves.len(), 3);
    for span in &solves {
        assert_eq!(span.cat, "solver.fast");
        assert!(span.arg("reachability").is_some());
        assert!(span.arg("transient_steps").is_some());
    }
    // Per-hop provenance: 3 hops per section-V path, one instant each.
    assert_eq!(log.named("hop").count(), 9);
    // Engine stage spans bracket the drain.
    for stage in ["plan", "execute", "assemble"] {
        assert_eq!(log.named(stage).count(), 1, "{stage} span present");
    }
    assert_eq!(log.dropped, 0);
}

#[test]
fn explicit_backend_results_are_bit_identical_with_tracing_enabled() {
    let trace = assert_traced_drain_is_bit_identical(|| Arc::new(ExplicitSolver));
    let log = trace.drain();
    let solves: Vec<_> = log.named("path_solve").collect();
    assert_eq!(solves.len(), 3);
    for span in &solves {
        assert_eq!(span.cat, "solver.explicit");
        assert!(span.arg("states").and_then(|a| a.as_u64()).unwrap() > 0);
        assert!(span.arg("transitions").and_then(|a| a.as_u64()).unwrap() > 0);
    }
    assert_eq!(log.named("hop").count(), 9);
}

#[test]
fn sim_backend_results_are_bit_identical_with_tracing_enabled() {
    let trace = assert_traced_drain_is_bit_identical(|| Arc::new(MonteCarloSolver::new(7, 20_000)));
    let log = trace.drain();
    let solves: Vec<_> = log.named("path_solve").collect();
    assert_eq!(solves.len(), 3);
    for span in &solves {
        assert_eq!(span.cat, "solver.sim");
        assert!(span.arg("seed").is_some());
        assert_eq!(
            span.arg("replications").and_then(|a| a.as_u64()),
            Some(20_000)
        );
        assert!(span.arg("draws").and_then(|a| a.as_u64()).unwrap() > 0);
    }
    assert_eq!(log.named("hop").count(), 9);
}

#[test]
fn disabled_trace_records_nothing() {
    let mut engine = Engine::new(2);
    for scenario in fleet() {
        engine.submit(scenario);
    }
    engine.drain().unwrap();
    assert!(!engine.trace().is_enabled());
    assert!(engine.trace().drain().is_empty());
}

#[test]
fn worker_threads_record_under_distinct_tids() {
    let mut engine = Engine::with_solver(2, Arc::new(FastSolver));
    let trace = Trace::new();
    engine.set_trace(trace.clone());
    for scenario in fleet() {
        engine.submit(scenario);
    }
    engine.drain().unwrap();
    let log = trace.drain();
    let solve_tids: std::collections::HashSet<u64> =
        log.named("path_solve").map(|e| e.tid).collect();
    let plan_tids: std::collections::HashSet<u64> = log.named("plan").map(|e| e.tid).collect();
    if engine.stats().effective_workers > 1 {
        // Path solves ran on pool workers, not on the draining thread.
        assert!(solve_tids.is_disjoint(&plan_tids));
    } else {
        // A single-core machine clamps the pool to one effective worker
        // and solves inline on the draining thread.
        assert_eq!(solve_tids, plan_tids);
    }
}
