//! Profiler integration: an attached profiler must attribute sampled
//! worker time to engine frames, and must never perturb results — the
//! same contract the Metrics/Trace facades are held to.

use whart_engine::{Engine, Scenario};
use whart_model::sweeps::section_v_model;
use whart_net::ReportingInterval;
use whart_prof::{Profiler, DEFAULT_HZ};

fn fleet() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (i, pi) in [0.83, 0.903, 0.948, 0.83].iter().enumerate() {
        let model = section_v_model(*pi, ReportingInterval::REGULAR).unwrap();
        scenarios.push(Scenario::paths(format!("s-{i}"), vec![model]));
    }
    scenarios
}

#[test]
fn results_are_bit_identical_with_profiler_enabled() {
    let mut plain = Engine::new(2);
    let mut profiled = Engine::new(2);
    profiled.set_profiler(Profiler::new());
    let capture = profiled
        .profiler()
        .start_capture(DEFAULT_HZ)
        .expect("enabled profiler captures");
    for scenario in fleet() {
        plain.submit(scenario.clone());
        profiled.submit(scenario);
    }
    let a = plain.drain().unwrap();
    let b = profiled.drain().unwrap();
    drop(capture);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.path_evaluations(), y.path_evaluations());
    }
}

#[test]
fn sampled_drains_attribute_time_to_engine_frames() {
    // Cold-drain fresh engines under a fast capture until the sampler
    // has observed the execute stage; every drain plans real solves, so
    // a handful of iterations is enough at 20 kHz even on slow machines.
    let profiler = Profiler::new();
    let capture = profiler.start_capture(20_000).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let profile = loop {
        let mut engine = Engine::new(4);
        engine.set_profiler(profiler.clone());
        for scenario in fleet() {
            engine.submit(scenario);
        }
        engine.drain().unwrap();
        if std::time::Instant::now() >= deadline {
            break capture.stop();
        }
        // Peek cheaply: run a short side capture to see if frames are
        // landing yet. The main capture keeps accumulating either way.
        let probe = profiler.start_capture(20_000).unwrap();
        let mut engine = Engine::new(4);
        engine.set_profiler(profiler.clone());
        for scenario in fleet() {
            engine.submit(scenario);
        }
        engine.drain().unwrap();
        if probe.stop().frame_total("engine.execute") > 0 {
            break capture.stop();
        }
    };
    assert!(profile.total_samples() > 0, "no samples at 20 kHz");
    assert!(
        profile.frame_total("engine.execute") > 0,
        "execute stage never sampled: {}",
        profile.to_folded()
    );
    // Worker ticks always sit under the execute frame: any sample on a
    // pool worker thread must carry it (the ≥90% attribution contract;
    // here it is structural, so it holds exactly).
    for thread in &profile.threads {
        if !thread.name.starts_with("whart-worker-") {
            continue;
        }
        for (stack, _) in &thread.stacks {
            assert_eq!(
                stack.first().map(String::as_str),
                Some("engine.execute"),
                "worker sample outside engine.execute: {stack:?}"
            );
        }
    }
    // Solver frames nest under execute in the folded rendering.
    let folded = profile.to_folded();
    if profile.frame_total("solver.fast") > 0 {
        assert!(folded.contains("engine.execute;solver.fast"));
    }
}

#[test]
fn disabled_profiler_is_the_default_and_free() {
    let engine = Engine::new(1);
    assert!(!engine.profiler().is_enabled());
    assert!(engine.profiler().start_capture(DEFAULT_HZ).is_none());
}
