//! Demand-driven trajectories: a fleet requesting only scalar measures
//! must never materialize a goal trajectory — cold or warm — and
//! trajectory-requesting scenarios get their own cache entries.

use whart_engine::{Engine, LinkQualitySpec, MeasureSet, Scenario};
use whart_model::{NetworkModel, PathEvaluation};
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;

const AVAILABILITIES: [f64; 6] = [0.693, 0.774, 0.83, 0.903, 0.948, 0.989];
const INTERVALS: [u32; 3] = [1, 2, 4];

fn typical_model(engine: &Engine, availability: f64, is: u32) -> NetworkModel {
    let link = engine
        .link_model(&LinkQualitySpec::availability(availability))
        .expect("representable availability");
    let net = TypicalNetwork::new(link);
    NetworkModel::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::new(is).expect("valid interval"),
    )
    .expect("typical network is valid")
}

fn assert_no_trajectories(evaluations: &[&PathEvaluation], label: &str) {
    for (i, e) in evaluations.iter().enumerate() {
        assert!(
            !e.has_trajectory(),
            "{label}: path {i} materialized a goal trajectory for a scalar-only request"
        );
        assert!(e.trajectory().is_empty());
    }
}

#[test]
fn scalar_fleet_materializes_zero_trajectories() {
    let mut engine = Engine::new(4);
    // Cold drain of the full typical fleet with default (scalar) measures.
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let model = typical_model(&engine, pi, is);
            engine.submit(Scenario::network(format!("pi={pi} Is={is}"), model));
        }
    }
    let cold = engine.drain().expect("cold fleet drains");
    for result in &cold {
        assert_no_trajectories(&result.path_evaluations(), &result.label);
    }

    // Warm drain: every evaluation comes out of the cache, still scalar.
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let model = typical_model(&engine, pi, is);
            engine.submit(Scenario::network(format!("warm pi={pi} Is={is}"), model));
        }
    }
    let warm = engine.drain().expect("warm fleet drains");
    for result in &warm {
        assert_no_trajectories(&result.path_evaluations(), &result.label);
    }
    // 360 scalar requests (cold + warm); slot-shift canonicalization
    // folds the cold fleet into 54 distinct solves and the warm drain
    // answers entirely from the cache.
    assert_eq!(engine.stats().paths_evaluated, 54);
}

#[test]
fn trajectory_requests_get_distinct_cache_entries() {
    let mut engine = Engine::new(2);
    let scalar_measures = MeasureSet::default();
    let full_measures = MeasureSet {
        goal_trajectory: true,
        ..MeasureSet::default()
    };

    let model = typical_model(&engine, 0.83, 4);
    engine.submit(Scenario::network("scalar", model.clone()).with_measures(scalar_measures));
    engine.submit(Scenario::network("full", model.clone()).with_measures(full_measures));
    let results = engine.drain().expect("mixed drain");

    // Same compiled problems, but the measure plan splits the cache key:
    // the 10 scalar requests canonicalize into 3 distinct solves, while
    // the 10 trajectory solves are never canonicalized (the trajectory
    // is indexed by absolute slot, so a shifted solve would record the
    // wrong curve).
    assert_eq!(engine.stats().paths_evaluated, 13);
    assert_no_trajectories(&results[0].path_evaluations(), "scalar");
    for e in results[1].path_evaluations() {
        assert!(e.has_trajectory(), "trajectory request must materialize");
        let traj = e.trajectory();
        assert_eq!(traj.len(), 4 * 20 + 1);
        // Scalars agree with the scalar-only twin bit-exactly.
    }
    for (a, b) in results[0]
        .path_evaluations()
        .iter()
        .zip(results[1].path_evaluations())
    {
        assert_eq!(a.cycle_probabilities(), b.cycle_probabilities());
        assert_eq!(a.discard_probability(), b.discard_probability());
        assert_eq!(a.expected_transmissions(), b.expected_transmissions());
    }

    // A warm trajectory request answers from the trajectory entry.
    engine.submit(Scenario::network("full-warm", model).with_measures(full_measures));
    let warm = engine.drain().expect("warm drain");
    assert_eq!(engine.stats().paths_evaluated, 13, "no re-solve");
    for e in warm[0].path_evaluations() {
        assert!(e.has_trajectory());
    }
}
