//! Fleet parity: the engine must reproduce the serial evaluator
//! bit-for-bit on the paper's typical network across a full parameter
//! fleet, while sharing work through its caches.

use whart_engine::{Engine, LinkQualitySpec, Scenario};
use whart_model::{DelayConvention, NetworkModel, UtilizationConvention};
use whart_net::typical::TypicalNetwork;
use whart_net::ReportingInterval;

const AVAILABILITIES: [f64; 6] = [0.693, 0.774, 0.83, 0.903, 0.948, 0.989];
const INTERVALS: [u32; 3] = [1, 2, 4];

fn typical_model(engine: &Engine, availability: f64, is: u32) -> NetworkModel {
    let link = engine
        .link_model(&LinkQualitySpec::availability(availability))
        .expect("representable availability");
    let net = TypicalNetwork::new(link);
    NetworkModel::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::new(is).expect("valid interval"),
    )
    .expect("typical network is valid")
}

#[test]
fn typical_fleet_matches_serial_evaluator_exactly() {
    let mut engine = Engine::new(4);
    let mut serial = Vec::new();
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let model = typical_model(&engine, pi, is);
            serial.push(model.evaluate().expect("serial evaluation succeeds"));
            engine.submit(Scenario::network(format!("pi={pi} Is={is}"), model));
        }
    }
    let results = engine.drain().expect("fleet drains");
    assert_eq!(results.len(), AVAILABILITIES.len() * INTERVALS.len());

    for (result, reference) in results.iter().zip(&serial) {
        let ours = result.network().expect("network workload");
        assert_eq!(ours.reports().len(), 10, "{}", result.label);
        for (a, b) in ours.reports().iter().zip(reference.reports()) {
            // PathEvaluation equality is field-wise over every computed
            // quantity (cycle probabilities, discard mass, trajectories).
            assert_eq!(a.evaluation, b.evaluation, "{}", result.label);
            assert_eq!(a.path.to_string(), b.path.to_string());
        }
        // Every derived measure, bit-identical (f64 ==, no tolerance).
        for convention in [DelayConvention::Absolute, DelayConvention::Eq7AsPrinted] {
            assert_eq!(
                ours.expected_delays_ms(convention),
                reference.expected_delays_ms(convention)
            );
            assert_eq!(
                ours.mean_delay_ms(convention),
                reference.mean_delay_ms(convention)
            );
        }
        assert_eq!(ours.reachabilities(), reference.reachabilities());
        for convention in [
            UtilizationConvention::AsEvaluated,
            UtilizationConvention::LostCharged,
        ] {
            assert_eq!(
                ours.utilization(convention),
                reference.utilization(convention)
            );
        }
        assert_eq!(
            ours.reachability_bottleneck(),
            reference.reachability_bottleneck(),
            "{}",
            result.label
        );
    }

    // The fleet shares work: each availability's link derivation ran once
    // for its three intervals.
    let stats = engine.stats();
    assert!(
        stats.cache_hits() > 0,
        "fleet must hit the caches: {stats:?}"
    );
    assert_eq!(stats.link_cache_misses, AVAILABILITIES.len() as u64);
    assert_eq!(
        stats.link_cache_hits,
        (AVAILABILITIES.len() * (INTERVALS.len() - 1)) as u64
    );
    // 180 path solves requested; slot-shift canonicalization folds the
    // schedules that differ only by a common slot offset (same hop
    // dynamics, depths and relative slot gaps) into 54 distinct DTMC
    // solves — while, per the assertions above, every one of the 180
    // reported evaluations still matches the serial evaluator bit for
    // bit.
    assert_eq!(stats.paths_requested, 180);
    assert_eq!(stats.paths_evaluated, 54);

    // A warm resubmission of the whole fleet solves nothing.
    for &pi in &AVAILABILITIES {
        for &is in &INTERVALS {
            let model = typical_model(&engine, pi, is);
            engine.submit(Scenario::network(format!("warm pi={pi} Is={is}"), model));
        }
    }
    let warm = engine.drain().expect("warm fleet drains");
    for (warm_result, cold_result) in warm.iter().zip(&results) {
        let (a, b) = (
            warm_result.network().unwrap(),
            cold_result.network().unwrap(),
        );
        for (x, y) in a.reports().iter().zip(b.reports()) {
            assert_eq!(x.evaluation, y.evaluation);
        }
    }
    let stats = engine.stats();
    assert_eq!(
        stats.paths_evaluated, 54,
        "warm drain re-solved a path DTMC"
    );
    // Every request beyond the 54 cold solves answered from the cache:
    // the cold drain's 126 in-batch canonical duplicates plus all 180
    // warm requests.
    assert_eq!(stats.path_cache_hits, 126 + 180);
    assert_eq!(stats.jobs_completed, 36);
}
