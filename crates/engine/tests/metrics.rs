//! Observability integration: metrics must attribute cache traffic and
//! solve latency correctly, and must never perturb results.

use whart_engine::{Engine, LinkQualitySpec, Scenario};
use whart_model::sweeps::{chain_model, section_v_model};
use whart_net::ReportingInterval;
use whart_obs::Metrics;

fn fleet() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for (i, pi) in [0.83, 0.903, 0.948, 0.83].iter().enumerate() {
        let model = section_v_model(*pi, ReportingInterval::REGULAR).unwrap();
        scenarios.push(Scenario::paths(format!("s-{i}"), vec![model]));
    }
    scenarios
}

#[test]
fn results_are_bit_identical_with_metrics_enabled() {
    let mut plain = Engine::new(2);
    let mut observed = Engine::new(2);
    observed.set_metrics(Metrics::new());
    for scenario in fleet() {
        plain.submit(scenario.clone());
        observed.submit(scenario);
    }
    let a = plain.drain().unwrap();
    let b = observed.drain().unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.path_evaluations(), y.path_evaluations());
    }
}

#[test]
fn scenario_latency_histogram_counts_every_scenario() {
    let mut engine = Engine::new(2);
    let metrics = Metrics::new();
    engine.set_metrics(metrics.clone());
    let scenarios = fleet();
    let expected = scenarios.len() as u64;
    for scenario in scenarios {
        engine.submit(scenario);
    }
    engine.drain().unwrap();
    let snapshot = metrics.snapshot();
    let hist = snapshot
        .histogram("engine.fast.scenario_solve_ns")
        .expect("per-scenario latency histogram present");
    assert_eq!(hist.count, expected, "one observation per scenario");
    // The fleet repeats one operating point, so the drain planned fewer
    // distinct solves than scenarios; cache traffic must say so.
    assert_eq!(snapshot.counter("engine.path_cache.hits"), Some(1));
    assert_eq!(snapshot.counter("engine.path_cache.misses"), Some(3));
    let paths = snapshot
        .histogram("engine.fast.path_solve_ns")
        .expect("per-path latency histogram present");
    assert_eq!(paths.count, 3, "one observation per distinct solve");
    // Solver-level instruments flow through the same registry.
    assert_eq!(
        snapshot.histogram("solver.fast.solve_ns").map(|h| h.count),
        Some(3)
    );
    assert!(snapshot.counter("solver.fast.transient_steps").unwrap_or(0) > 0);
}

#[test]
fn warm_drain_records_zero_latency_scenarios() {
    let mut engine = Engine::new(1);
    let metrics = Metrics::new();
    engine.set_metrics(metrics.clone());
    let model = chain_model(2, 0.83, ReportingInterval::REGULAR).unwrap();
    engine.submit(Scenario::paths("cold", vec![model.clone()]));
    engine.drain().unwrap();
    engine.submit(Scenario::paths("warm", vec![model]));
    engine.drain().unwrap();
    let snapshot = metrics.snapshot();
    let hist = snapshot.histogram("engine.fast.scenario_solve_ns").unwrap();
    assert_eq!(hist.count, 2, "both drains' scenarios observed");
    assert_eq!(snapshot.counter("engine.path_cache.hits"), Some(1));
    assert_eq!(
        snapshot.histogram("engine.plan_ns").map(|h| h.count),
        Some(2),
        "one plan-stage observation per drain"
    );
}

#[test]
fn cache_evictions_reach_stats_and_metrics() {
    let mut engine = Engine::new(1);
    let metrics = Metrics::new();
    engine.set_metrics(metrics.clone());
    engine.set_cache_capacities(Some(1), Some(1));
    for scenario in fleet() {
        engine.submit(scenario);
    }
    engine.drain().unwrap();
    let stats = engine.stats();
    assert_eq!(
        stats.path_cache_evictions, 2,
        "three distinct entries through a one-entry cache"
    );
    assert_eq!(
        metrics.snapshot().counter("engine.path_cache.evictions"),
        Some(2)
    );
    for availability in [0.8, 0.85, 0.9] {
        engine
            .link_model(&LinkQualitySpec::Availability {
                availability,
                p_rc: 0.9,
            })
            .unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.link_cache_evictions, 2);
    assert_eq!(
        metrics.snapshot().counter("engine.link_cache.evictions"),
        Some(2)
    );
}

#[test]
fn disabled_metrics_leave_an_empty_snapshot() {
    let mut engine = Engine::new(2);
    for scenario in fleet() {
        engine.submit(scenario);
    }
    engine.drain().unwrap();
    assert!(engine.metrics().snapshot().is_empty());
    assert!(!engine.metrics().is_enabled());
}
