//! Property test for Eq. 12 (path compositionality): the cycle
//! probability function of a composed path equals the convolution of its
//! components' functions — the paper's "time-shifted by one" convolution
//! becomes a plain convolution with 0-based cycle indexing. Checked
//! three ways against each other on random heterogeneous paths:
//!
//! 1. the manual shifted-convolution sum (Eq. 12 as written),
//! 2. `whart_model::compose::compose_cycle_probabilities`,
//! 3. direct evaluation of the composed path, served from the engine's
//!    path cache (and bit-identical to the serial evaluator).

use proptest::prelude::*;
use whart_engine::{Engine, Outcome, Scenario};
use whart_model::compose::compose_cycle_probabilities;
use whart_model::{LinkDynamics, PathEvaluation, PathModel};
use whart_net::{ReportingInterval, Superframe};

/// Builds a steady path whose hop `k` has availability `pis[k]` and frame
/// slot `first_slot + k` inside a symmetric `F_up = 20` super-frame.
fn path(pis: &[f64], first_slot: usize) -> PathModel {
    let mut b = PathModel::builder();
    for (k, &pi) in pis.iter().enumerate() {
        let link = whart_channel::LinkModel::from_availability(pi, 0.9)
            .expect("availability in the representable range");
        b.add_hop(LinkDynamics::steady(link), first_slot + k);
    }
    b.superframe(Superframe::symmetric(20).expect("valid frame"))
        .interval(ReportingInterval::REGULAR);
    b.build().expect("valid path")
}

/// Eq. 12 as the paper states it: `g(i) = sum_j g_peer(j) * g_exist(i-j)`
/// over the 1-shifted cycle index, truncated to the reporting interval.
fn manual_convolution(peer: &PathEvaluation, existing: &PathEvaluation, cycles: usize) -> Vec<f64> {
    let g_p = peer.cycle_probabilities();
    let g_e = existing.cycle_probabilities();
    (0..cycles)
        .map(|i| (0..=i).map(|j| g_p.get(j) * g_e.get(i - j)).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eq12_composition_matches_direct_and_cached_evaluation(
        peer_hops in 1usize..4,
        exist_hops in 1usize..4,
        pis in proptest::collection::vec(0.55f64..0.98, 6),
    ) {
        let peer_pis = &pis[..peer_hops];
        let exist_pis = &pis[peer_hops..peer_hops + exist_hops];

        // Components evaluated separately; the composed path serves the
        // peer's hops first, then the existing path's, in order within
        // each frame.
        let peer = path(peer_pis, 0).evaluate();
        let existing = path(exist_pis, 0).evaluate();
        let full_pis: Vec<f64> = pis[..peer_hops + exist_hops].to_vec();
        let full_model = path(&full_pis, 0);
        let direct = full_model.evaluate();

        let cycles = ReportingInterval::REGULAR.cycles() as usize;
        let manual = manual_convolution(&peer, &existing, cycles);
        let composed = compose_cycle_probabilities(
            peer.cycle_probabilities(),
            existing.cycle_probabilities(),
            ReportingInterval::REGULAR,
        );

        // The engine's cached answer: evaluate the composed path twice
        // through one engine; the second answer comes from the path cache.
        let mut engine = Engine::new(1);
        engine.submit(Scenario::paths("cold", vec![full_model.clone()]));
        engine.submit(Scenario::paths("warm", vec![full_model]));
        let results = engine.drain().expect("drain succeeds");
        prop_assert_eq!(engine.stats().paths_evaluated, 1);
        let cached = match &results[1].outcome {
            Outcome::Paths(evals) => evals[0].clone(),
            Outcome::Network(_) => unreachable!("paths workload"),
        };

        // Cached evaluation is bit-identical to the direct one.
        prop_assert_eq!(&cached, &direct);

        for (i, &m) in manual.iter().enumerate().take(cycles) {
            let d = direct.cycle_probabilities().get(i);
            prop_assert!(
                (m - d).abs() < 1e-12,
                "manual Eq. 12 vs direct at cycle {}: {} vs {}", i, m, d
            );
            prop_assert!(
                (composed.get(i) - d).abs() < 1e-12,
                "compose() vs direct at cycle {}: {} vs {}", i, composed.get(i), d
            );
            prop_assert!(
                (cached.cycle_probabilities().get(i) - d).abs() == 0.0,
                "cached vs direct at cycle {}", i
            );
        }
    }
}
