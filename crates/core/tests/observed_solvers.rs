//! The `Solver` observability contract: instrumented solves must be
//! bit-identical to plain ones, and a disabled registry must stay empty.

use whart_model::sweeps::{chain_model, section_v_model};
use whart_model::{ExplicitSolver, FastSolver, MeasurePlan, Solver};
use whart_net::ReportingInterval;
use whart_obs::Metrics;

#[test]
fn fast_solver_is_inert_when_observability_is_off() {
    let problem = section_v_model(0.75, ReportingInterval::REGULAR)
        .unwrap()
        .compile();
    let disabled = Metrics::disabled();
    let plain = FastSolver
        .solve_path(&problem, MeasurePlan::SCALAR)
        .unwrap();
    let observed = FastSolver
        .solve_path_observed(&problem, MeasurePlan::SCALAR, &disabled)
        .unwrap();
    assert_eq!(plain, observed, "bit-identical evaluation");
    assert!(
        disabled.snapshot().is_empty(),
        "zero snapshot entries with observability off"
    );
    assert!(!disabled.is_enabled());
}

#[test]
fn fast_solver_records_timing_and_steps_without_perturbing_results() {
    let problem = section_v_model(0.75, ReportingInterval::REGULAR)
        .unwrap()
        .compile();
    let metrics = Metrics::new();
    let plain = FastSolver
        .solve_path(&problem, MeasurePlan::SCALAR)
        .unwrap();
    let observed = FastSolver
        .solve_path_observed(&problem, MeasurePlan::SCALAR, &metrics)
        .unwrap();
    assert_eq!(plain, observed, "metrics must not perturb the solve");
    let snapshot = metrics.snapshot();
    assert_eq!(
        snapshot.histogram("solver.fast.solve_ns").map(|h| h.count),
        Some(1)
    );
    // The Section V example runs Is * F_up = 4 * 7 transient steps.
    assert_eq!(snapshot.counter("solver.fast.transient_steps"), Some(28));
}

#[test]
fn explicit_solver_reports_chain_dimensions() {
    let problem = chain_model(2, 0.83, ReportingInterval::REGULAR)
        .unwrap()
        .compile();
    let metrics = Metrics::new();
    let observed = ExplicitSolver
        .solve_path_observed(&problem, MeasurePlan::SCALAR, &metrics)
        .unwrap();
    let plain = ExplicitSolver
        .solve_path(&problem, MeasurePlan::SCALAR)
        .unwrap();
    assert_eq!(plain, observed);
    let snapshot = metrics.snapshot();
    assert_eq!(
        snapshot
            .histogram("solver.explicit.solve_ns")
            .map(|h| h.count),
        Some(1)
    );
    assert!(snapshot.counter("solver.explicit.states").unwrap() > 0);
    assert!(snapshot.counter("solver.explicit.transitions").unwrap() > 0);
}

#[test]
fn network_solves_share_the_registry_across_paths() {
    let link = whart_channel::LinkModel::from_availability(0.83, 0.9).unwrap();
    let net = whart_net::typical::TypicalNetwork::new(link);
    let model = whart_model::NetworkModel::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
    )
    .unwrap();
    let network = model.compile().unwrap();
    let metrics = Metrics::new();
    let observed = FastSolver
        .solve_network_observed(&network, MeasurePlan::SCALAR, &metrics)
        .unwrap();
    let plain = FastSolver
        .solve_network(&network, MeasurePlan::SCALAR)
        .unwrap();
    assert_eq!(plain.reports().len(), observed.reports().len());
    for (p, o) in plain.reports().iter().zip(observed.reports()) {
        assert_eq!(p.evaluation, o.evaluation);
    }
    let count = metrics
        .snapshot()
        .histogram("solver.fast.solve_ns")
        .map(|h| h.count);
    assert_eq!(count, Some(network.path_problems().len() as u64));
}
