//! Property-based tests for the hierarchical model: the fast evaluator, the
//! explicit Algorithm-1 chain, composition and the measures must agree with
//! each other and with closed forms on randomized configurations.

use proptest::prelude::*;
use whart_channel::{LinkModel, LinkState};
use whart_dtmc::Pmf;
use whart_model::{
    compose, explicit::explicit_chain, DelayConvention, FastSolver, LinkDynamics, MeasurePlan,
    Outage, PathModel, Solver, UtilizationConvention,
};
use whart_net::{ReportingInterval, Superframe};

/// A random path model: `hops` homogeneous steady links at `pi`, hop `k` in
/// frame slot `slots[k]` (strictly increasing), interval `is`.
fn build_model(pis: &[f64], slots: &[usize], f_up: u32, is: u32, ttl: Option<u32>) -> PathModel {
    let mut b = PathModel::builder();
    for (k, (&pi, &slot)) in pis.iter().zip(slots).enumerate() {
        let _ = k;
        b.add_hop(
            LinkDynamics::steady(LinkModel::from_availability(pi, 0.9).unwrap()),
            slot,
        );
    }
    b.superframe(Superframe::symmetric(f_up).unwrap())
        .interval(ReportingInterval::new(is).unwrap());
    if let Some(t) = ttl {
        b.ttl(t);
    }
    b.build().unwrap()
}

/// Strategy: 1..=4 availabilities in the representable range plus strictly
/// increasing slots inside an f_up-slot frame.
fn model_params() -> impl Strategy<Value = (Vec<f64>, Vec<usize>, u32, u32)> {
    (1usize..=4, 2u32..=10, 1u32..=5).prop_flat_map(|(hops, extra, is)| {
        let f_up = hops as u32 + extra;
        (
            proptest::collection::vec(0.5f64..0.99, hops),
            proptest::sample::subsequence((0..f_up as usize).collect::<Vec<_>>(), hops),
            Just(f_up),
            Just(is),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn explicit_chain_matches_fast_evaluator((pis, slots, f_up, is) in model_params()) {
        let model = build_model(&pis, &slots, f_up, is, None);
        let fast = model.evaluate();
        let slow = explicit_chain(&model).cycle_probabilities().unwrap();
        for i in 0..is as usize {
            prop_assert!(
                (fast.cycle_probabilities().get(i) - slow.get(i)).abs() < 1e-10,
                "cycle {i}: fast {} vs explicit {}",
                fast.cycle_probabilities().get(i),
                slow.get(i)
            );
        }
    }

    #[test]
    fn ir_round_trip_preserves_the_signature(
        (pis, slots, f_up, is) in model_params(),
        // Roughly one case in eight runs without a TTL.
        ttl in (0u32..40).prop_map(|t| if t < 5 { None } else { Some(t) }),
    ) {
        // Spec -> IR -> spec must be lossless where the signature is
        // concerned: compiling, reconstructing the model, and recompiling
        // all land on the same bit-exact identity.
        let model = build_model(&pis, &slots, f_up, is, ttl);
        let problem = model.compile();
        let round = problem.to_model();
        prop_assert_eq!(model.signature(), problem.signature());
        prop_assert_eq!(model.signature(), round.signature());

        // Equal signatures imply bit-identical fast-solver results.
        let a = FastSolver.solve_path(&problem, MeasurePlan::SCALAR).unwrap();
        let b = FastSolver.solve_path(&round.compile(), MeasurePlan::SCALAR).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn probability_mass_is_conserved((pis, slots, f_up, is) in model_params()) {
        let eval = build_model(&pis, &slots, f_up, is, None).evaluate();
        let total = eval.reachability() + eval.discard_probability();
        prop_assert!((total - 1.0).abs() < 1e-12);
        prop_assert!(eval.cycle_probabilities().as_slice().iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn homogeneous_in_order_paths_are_negative_binomial(
        pi in 0.5f64..0.99,
        hops in 1u32..=4,
        is in 1u32..=5,
    ) {
        let slots: Vec<usize> = (0..hops as usize).collect();
        let pis = vec![pi; hops as usize];
        let eval = build_model(&pis, &slots, hops, is, None).evaluate();
        let nb = Pmf::negative_binomial(pi, hops, is as usize).unwrap();
        for i in 0..is as usize {
            prop_assert!((eval.cycle_probabilities().get(i) - nb.get(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn reachability_is_monotone_in_availability(
        lo in 0.5f64..0.9,
        delta in 0.001f64..0.09,
        hops in 1u32..=4,
    ) {
        let slots: Vec<usize> = (0..hops as usize).collect();
        let worse = build_model(&vec![lo; hops as usize], &slots, hops, 4, None).evaluate();
        let better =
            build_model(&vec![lo + delta; hops as usize], &slots, hops, 4, None).evaluate();
        prop_assert!(better.reachability() >= worse.reachability());
        // Better links also deliver earlier in expectation.
        let (db, dw) = (
            better.expected_delay_ms(DelayConvention::Absolute).unwrap(),
            worse.expected_delay_ms(DelayConvention::Absolute).unwrap(),
        );
        prop_assert!(db <= dw + 1e-9);
    }

    #[test]
    fn reachability_is_monotone_in_interval((pis, slots, f_up, _is) in model_params()) {
        let mut last = 0.0;
        for is in 1..=6 {
            let r = build_model(&pis, &slots, f_up, is, None).evaluate().reachability();
            prop_assert!(r + 1e-12 >= last, "Is={is}: {r} < {last}");
            last = r;
        }
    }

    #[test]
    fn ttl_only_reduces_reachability((pis, slots, f_up, is) in model_params(), ttl in 1u32..40) {
        let full = build_model(&pis, &slots, f_up, is, None).evaluate();
        let limited = build_model(&pis, &slots, f_up, is, Some(ttl)).evaluate();
        prop_assert!(limited.reachability() <= full.reachability() + 1e-12);
        // Per-cycle probabilities never increase under a TTL.
        for i in 0..is as usize {
            prop_assert!(
                limited.cycle_probabilities().get(i)
                    <= full.cycle_probabilities().get(i) + 1e-12
            );
        }
    }

    #[test]
    fn composition_matches_monolithic_evaluation(
        pi_a in 0.5f64..0.99,
        pi_b in 0.5f64..0.99,
        split in 1usize..=3,
        is in 1u32..=5,
    ) {
        // A 4-hop path split at `split`: composing the two segment
        // evaluations must equal evaluating the whole path (hops in order,
        // slots 0..4 in a frame of 4).
        let hops = 4usize;
        let pis: Vec<f64> =
            (0..hops).map(|k| if k < split { pi_a } else { pi_b }).collect();
        let slots: Vec<usize> = (0..hops).collect();
        let full = build_model(&pis, &slots, hops as u32, is, None).evaluate();

        let seg1 = build_model(&pis[..split], &slots[..split], hops as u32, is, None).evaluate();
        let seg2_slots: Vec<usize> = (0..hops - split).collect();
        let seg2 =
            build_model(&pis[split..], &seg2_slots, (hops - split) as u32, is, None).evaluate();
        let composed = compose::compose_cycle_probabilities(
            seg1.cycle_probabilities(),
            seg2.cycle_probabilities(),
            ReportingInterval::new(is).unwrap(),
        );
        for i in 0..is as usize {
            prop_assert!(
                (composed.get(i) - full.cycle_probabilities().get(i)).abs() < 1e-12,
                "cycle {i}"
            );
        }
    }

    #[test]
    fn utilization_is_bounded((pis, slots, f_up, is) in model_params()) {
        let eval = build_model(&pis, &slots, f_up, is, None).evaluate();
        for convention in [
            UtilizationConvention::AsEvaluated,
            UtilizationConvention::LostCharged,
            UtilizationConvention::Eq10AsPrinted,
        ] {
            let u = eval.utilization(convention);
            prop_assert!((0.0..=1.0).contains(&u), "{convention:?}: {u}");
        }
    }

    #[test]
    fn exact_utilization_is_bracketed_by_conventions((pis, slots, f_up, is) in model_params()) {
        // AsEvaluated charges lost messages nothing; LostCharged charges
        // their worst case; the exact expected-transmission count sits in
        // between. Delivered-message counts coincide across all three.
        let eval = build_model(&pis, &slots, f_up, is, None).evaluate();
        let lo = eval.utilization(UtilizationConvention::AsEvaluated);
        let hi = eval.utilization(UtilizationConvention::LostCharged);
        let exact = eval.exact_utilization();
        prop_assert!(lo <= exact + 1e-12, "{lo} vs {exact}");
        prop_assert!(exact <= hi + 1e-12, "{exact} vs {hi}");
    }

    #[test]
    fn delay_distribution_is_normalized_and_ordered((pis, slots, f_up, is) in model_params()) {
        let eval = build_model(&pis, &slots, f_up, is, None).evaluate();
        let d = eval.delay_distribution(DelayConvention::Absolute);
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        // Support delays are strictly increasing across cycles.
        let delays: Vec<f64> = d.iter().map(|(v, _)| v).collect();
        for w in delays.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn outage_never_improves_reachability(
        (_pis, slots, f_up, is) in model_params(),
        pi in 0.9f64..0.99,
        start in 0u64..30,
        len in 1u64..20,
    ) {
        // Monotonicity only holds when the link chain's second eigenvalue
        // `1 - p_fl - p_rc` is non-negative (pi >= p_rc); otherwise the
        // post-outage recovery overshoots the steady state (channel hopping
        // makes a just-failed link *more* likely up next slot) and a
        // well-timed outage can help — a real property of the paper's model.
        let pis = vec![pi; slots.len()];
        let baseline = build_model(&pis, &slots, f_up, is, None);
        let mut b = PathModel::builder();
        for (k, (&pi, &slot)) in pis.iter().zip(&slots).enumerate() {
            let link = LinkModel::from_availability(pi, 0.9).unwrap();
            let dynamics = if k == 0 {
                LinkDynamics::steady(link).with_outage(Outage::new(start, start + len))
            } else {
                LinkDynamics::steady(link)
            };
            b.add_hop(dynamics, slot);
        }
        b.superframe(Superframe::symmetric(f_up).unwrap())
            .interval(ReportingInterval::new(is).unwrap());
        let degraded = b.build().unwrap();
        prop_assert!(
            degraded.evaluate().reachability() <= baseline.evaluate().reachability() + 1e-12
        );
    }

    #[test]
    fn starting_down_hurts_starting_up_helps(
        // Restricted to the monotone regime (see the outage property above).
        pi in 0.9f64..0.99,
        slot in 0usize..5,
    ) {
        let link = LinkModel::from_availability(pi, 0.9).unwrap();
        let build = |initial: LinkDynamics| {
            let mut b = PathModel::builder();
            b.add_hop(initial, slot);
            b.superframe(Superframe::symmetric(5).unwrap())
                .interval(ReportingInterval::new(2).unwrap());
            b.build().unwrap().evaluate().reachability()
        };
        let steady = build(LinkDynamics::steady(link));
        let down = build(LinkDynamics::starting_in(link, LinkState::Down));
        let up = build(LinkDynamics::starting_in(link, LinkState::Up));
        prop_assert!(down <= steady + 1e-12);
        prop_assert!(up + 1e-12 >= steady);
    }
}
