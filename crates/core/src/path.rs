//! The hierarchical path model (Section IV) — fast evaluator.
//!
//! A [`PathModel`] describes how one message is forwarded along an uplink
//! path during a reporting interval: per-hop [`LinkDynamics`], the frame
//! slots the schedule grants each hop, the super-frame shape, the reporting
//! interval and the TTL. [`PathModel::evaluate`] iterates the transient
//! distribution `p(t) = p(t-1) P(t)` (Eq. 5) over the `Is * F_up` uplink
//! slots, with the per-slot transition probabilities inherited from the
//! link models (Eq. 3), and returns the goal-state probabilities
//! ([`PathEvaluation`]).
//!
//! Timing semantics (calibrated against every number the paper reports —
//! see DESIGN.md): each of the `Is * F_up` uplink slots applies its
//! scheduled transmission; a success on the final hop during frame slot
//! `a0` (1-based) of cycle `i` absorbs into goal state `i` with delay
//! `((i-1) * (F_up + T_down) + a0) * 10 ms`. Link chains evolve over
//! *absolute* slots, i.e. they keep evolving through the downlink half.

use crate::dynamics::LinkDynamics;
use crate::error::{ModelError, Result};
use crate::ir::{MeasurePlan, PathProblem, ProblemHop};
use whart_dtmc::Pmf;
use whart_net::{NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};

/// One scheduled hop of a path model: the transmission of hop `hop` (0-based
/// position along the path) in frame slot `slot` (0-based within the uplink
/// half).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HopSlot {
    slot: usize,
    hop: usize,
}

/// The hierarchical DTMC model of one uplink path.
#[derive(Debug, Clone)]
pub struct PathModel {
    dynamics: Vec<LinkDynamics>,
    hop_slots: Vec<HopSlot>,
    superframe: Superframe,
    interval: ReportingInterval,
    ttl: u32,
}

impl PathModel {
    /// Starts building a model hop by hop.
    pub fn builder() -> PathModelBuilder {
        PathModelBuilder::default()
    }

    /// Builds the model of `paths[path_index]` from a fully specified
    /// network: link models are read from the topology (steady-state
    /// dynamics), slots from the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Net`] if the schedule does not serve the path
    /// consistently or a hop has no link, and [`ModelError::Inconsistent`]
    /// if the schedule is longer than the uplink half.
    pub fn from_network(
        topology: &Topology,
        paths: &[Path],
        schedule: &Schedule,
        superframe: Superframe,
        interval: ReportingInterval,
        path_index: usize,
    ) -> Result<PathModel> {
        schedule.validate(topology, paths)?;
        if schedule.len() > superframe.uplink_slots() as usize {
            return Err(ModelError::Inconsistent {
                reason: format!(
                    "schedule has {} slots but the uplink half only {}",
                    schedule.len(),
                    superframe.uplink_slots()
                ),
            });
        }
        let path = paths
            .get(path_index)
            .ok_or_else(|| ModelError::Inconsistent {
                reason: format!("path index {path_index} out of range"),
            })?;
        let mut builder = PathModel::builder();
        for (slot, hop) in schedule.slots_for_path(path_index) {
            let link = topology.link_for(hop)?;
            builder.add_hop(LinkDynamics::steady(link), slot);
        }
        debug_assert_eq!(builder.hops.len(), path.hop_count());
        builder.superframe(superframe).interval(interval);
        builder.build()
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.dynamics.len()
    }

    /// The 1-based frame slot of the final hop (the paper's `a0`, which
    /// fixes the arrival slot in every cycle).
    pub fn arrival_slot_number(&self) -> u32 {
        self.hop_slots
            .iter()
            .map(|hs| hs.slot)
            .max()
            .expect("models have >= 1 hop") as u32
            + 1
    }

    /// The super-frame.
    pub fn superframe(&self) -> Superframe {
        self.superframe
    }

    /// The reporting interval.
    pub fn interval(&self) -> ReportingInterval {
        self.interval
    }

    /// The TTL in uplink slots.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// The per-hop link dynamics.
    pub fn hop_dynamics(&self) -> &[LinkDynamics] {
        &self.dynamics
    }

    /// The success probability of hop `hop` when transmitted in cycle
    /// `cycle` (0-based): the link's transient UP probability at the
    /// absolute slot of that transmission.
    pub fn success_probability(&self, hop: usize, cycle: u32) -> f64 {
        let hs = self
            .hop_slots
            .iter()
            .find(|hs| hs.hop == hop)
            .expect("hop exists");
        let abs_slot = u64::from(cycle) * u64::from(self.superframe.cycle_slots()) + hs.slot as u64;
        self.dynamics[hop].up_probability(abs_slot)
    }

    /// The same model under a different reporting interval (the TTL is
    /// reset to the new interval's default). Used by the failure studies,
    /// which model a k-cycle link failure as the loss of k cycles of the
    /// interval (Section VI-C / Table III).
    pub fn with_interval(&self, interval: ReportingInterval) -> PathModel {
        let mut model = self.clone();
        model.interval = interval;
        model.ttl = interval.cycles() * self.superframe.uplink_slots();
        model
    }

    /// Lowers this model to its compiled problem IR: the fully-resolved
    /// input of a path solve, consumed by every [`crate::ir::Solver`]
    /// backend. The round trip through [`PathProblem::to_model`] preserves
    /// the [`crate::signature::PathSignature`] bit-exactly.
    pub fn compile(&self) -> PathProblem {
        let hops = self
            .dynamics
            .iter()
            .zip(&self.hop_slots)
            .map(|(dynamics, hs)| ProblemHop::new(dynamics.clone(), hs.slot, None))
            .collect();
        PathProblem::new(hops, self.superframe, self.interval, self.ttl)
    }

    /// Consuming lowering with physical-link identities attached: moves
    /// the hop dynamics into the problem instead of cloning them (the hot
    /// path of [`crate::NetworkModel::path_problem`], which builds a
    /// throwaway model per planned path).
    pub(crate) fn into_problem(self, links: Vec<(NodeId, NodeId)>) -> PathProblem {
        debug_assert_eq!(links.len(), self.dynamics.len());
        let hops = self
            .dynamics
            .into_iter()
            .zip(self.hop_slots)
            .zip(links)
            .map(|((dynamics, hs), link)| ProblemHop::new(dynamics, hs.slot, Some(link)))
            .collect();
        PathProblem::new(hops, self.superframe, self.interval, self.ttl)
    }

    /// Reconstructs a model from a compiled problem (the inverse of
    /// [`PathModel::compile`]). Direct construction — the problem's
    /// invariants were established by the builder that originally
    /// produced it, including an already-resolved TTL.
    pub(crate) fn from_problem(problem: &PathProblem) -> PathModel {
        PathModel {
            dynamics: problem
                .hops()
                .iter()
                .map(|h| h.dynamics().clone())
                .collect(),
            hop_slots: problem
                .hops()
                .iter()
                .enumerate()
                .map(|(hop, h)| HopSlot {
                    slot: h.frame_slot(),
                    hop,
                })
                .collect(),
            superframe: problem.superframe(),
            interval: problem.interval(),
            ttl: problem.ttl(),
        }
    }

    /// Evaluates the model with scalar measures only: the transient
    /// iteration of Eq. 5 over the whole reporting interval. Equivalent
    /// to `evaluate_with(MeasurePlan::SCALAR)`; use
    /// [`PathModel::evaluate_with`] to also retain the goal trajectory.
    pub fn evaluate(&self) -> PathEvaluation {
        self.evaluate_with(MeasurePlan::default())
    }

    /// Evaluates the model, materializing the optional artifacts `plan`
    /// requests.
    pub fn evaluate_with(&self, plan: MeasurePlan) -> PathEvaluation {
        fast_evaluate(&self.compile(), plan)
    }
}

/// The fast backend's core: the in-place transient iteration of Eq. 5
/// over a compiled [`PathProblem`]. Trajectory rows are recorded only
/// when `plan` asks for them, and only up to the TTL expiry (goals are
/// constant afterwards); [`PathEvaluation::trajectory`] re-pads on
/// demand.
pub(crate) fn fast_evaluate(problem: &PathProblem, plan: MeasurePlan) -> PathEvaluation {
    fast_evaluate_counted(problem, plan).0
}

/// A step-level observation of the transient iteration — the provenance
/// feed shared by the traced fast solve and `whart explain`. The
/// observer receives exactly the values the iteration computes and
/// cannot influence them; a no-op observer monomorphizes back to the
/// plain loop, so observed and unobserved runs are bit-identical by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum StepEvent<'a> {
    /// A scheduled transmission fired with positive in-flight mass.
    Transmission {
        /// 0-based hop whose transmission fired.
        hop: usize,
        /// Mass sitting at the hop when the slot opened.
        mass: f64,
        /// The link's transient UP probability at the absolute slot.
        success: f64,
        /// Mass that advanced (absorbed into the cycle's goal on the
        /// final hop).
        moved: f64,
    },
    /// A cycle boundary: the interval's transition mass so far.
    CycleEnd {
        /// 0-based cycle that just ended.
        cycle: usize,
        /// Mass absorbed into this cycle's goal state.
        goal_mass: f64,
        /// Total goal mass accumulated across cycles so far.
        delivered: f64,
        /// Mass still in flight on the path — the transient-step
        /// convergence residual.
        in_flight: f64,
    },
    /// TTL expiry: the per-hop in-flight mass about to be discarded
    /// (`in_flight[j]` waits to cross hop `j`).
    Discard {
        /// 1-based uplink slot at which the TTL expired.
        step: usize,
        /// Per-hop mass lost to the discard.
        in_flight: &'a [f64],
    },
}

/// [`fast_evaluate`] plus the number of transient iteration steps the
/// solve actually executed (the TTL can cut the horizon short) — the
/// quantity the fast backend reports to the observability layer.
pub(crate) fn fast_evaluate_counted(
    problem: &PathProblem,
    plan: MeasurePlan,
) -> (PathEvaluation, u64) {
    fast_evaluate_observed(problem, plan, |_| {})
}

/// Sums `values` four lanes at a time: manual unroll over `[f64; 4]`
/// chunks with independent partial accumulators (autovectorizer-friendly,
/// std-only), scalar tail, partials folded left-to-right.
///
/// The lane split changes the association order relative to
/// `iter().sum()`, so the result is a *different* (equally valid)
/// floating-point sum. Every result-feeding reduction in the evaluator
/// goes through this one helper — both the per-slot recording loop and
/// the event-driven scalar loop — which is what keeps the two loops
/// bit-identical to each other.
#[inline]
fn sum_lanes4(values: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for chunk in &mut chunks {
        acc[0] += chunk[0];
        acc[1] += chunk[1];
        acc[2] += chunk[2];
        acc[3] += chunk[3];
    }
    let mut tail = 0.0f64;
    for &v in chunks.remainder() {
        tail += v;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// The per-hop success probability feed for one transient solve.
///
/// For exactly-stationary dynamics ([`LinkDynamics::is_exactly_stationary`])
/// `up_probability` returns the same bits at every slot — the Eq. 3
/// transient term is exactly `±0.0` — so the value is fetched once and
/// reused, skipping the per-transmission outage scan and `lambda^t`
/// evaluation. Time-varying hops fall back to the full per-slot query.
struct SuccessFeed<'a> {
    hops: &'a [ProblemHop],
    constant: Vec<Option<f64>>,
}

impl<'a> SuccessFeed<'a> {
    fn new(hops: &'a [ProblemHop]) -> SuccessFeed<'a> {
        let constant = hops
            .iter()
            .map(|h| {
                h.dynamics()
                    .is_exactly_stationary()
                    .then(|| h.dynamics().up_probability(0))
            })
            .collect();
        SuccessFeed { hops, constant }
    }

    #[inline]
    fn at(&self, hop: usize, abs_slot: u64) -> f64 {
        match self.constant[hop] {
            Some(p) => p,
            None => self.hops[hop].dynamics().up_probability(abs_slot),
        }
    }
}

/// [`fast_evaluate_counted`] with a step observer attached; see
/// [`StepEvent`].
///
/// Two loop shapes share one set of state-update expressions:
///
/// * the **per-slot loop** walks every uplink slot (the trajectory plan
///   needs one goal row per slot, observers see empty-slot boundaries);
/// * the **event-driven loop** (scalar plan) visits only the scheduled
///   transmissions plus cycle boundaries, skipping the empty slots that
///   dominate sparse schedules.
///
/// Both apply transmissions in the same (cycle, slot) order with
/// identical arithmetic and reduce through [`sum_lanes4`], so their
/// results are bit-identical (asserted by the scalar-vs-trajectory
/// parity test in `ir.rs`), and a no-op observer monomorphizes each to
/// its plain loop.
pub(crate) fn fast_evaluate_observed<F: for<'a> FnMut(StepEvent<'a>)>(
    problem: &PathProblem,
    plan: MeasurePlan,
    mut observe: F,
) -> (PathEvaluation, u64) {
    let n = problem.hop_count();
    let f_up = problem.superframe().uplink_slots() as usize;
    let cycles = problem.interval().cycles() as usize;
    let total = f_up * cycles;
    let cycle_slots = u64::from(problem.superframe().cycle_slots());
    let ttl = problem.ttl();
    let record = plan.goal_trajectory;
    let success = SuccessFeed::new(problem.hops());

    // position[j] = P(message sits j hops along the path).
    let mut position = vec![0.0f64; n];
    position[0] = 1.0;
    let mut goals = vec![0.0f64; cycles];
    let mut discard = 0.0f64;
    let mut expected_transmissions = 0.0f64;
    let mut goal_trajectory: Vec<Vec<f64>> = Vec::new();

    // One scheduled transmission: the shared state update of both loops.
    // Returns the success probability and the moved mass for observers.
    let transmit = |hop: usize,
                    cycle: usize,
                    frame_slot: usize,
                    position: &mut [f64],
                    goals: &mut [f64],
                    expected_transmissions: &mut f64|
     -> Option<(f64, f64, f64)> {
        let mass = position[hop];
        if mass <= 0.0 {
            return None;
        }
        *expected_transmissions += mass;
        let abs_slot = cycle as u64 * cycle_slots + frame_slot as u64;
        let ps = success.at(hop, abs_slot);
        let moved = mass * ps;
        position[hop] = mass - moved;
        if hop + 1 == n {
            goals[cycle] += moved;
        } else {
            position[hop + 1] += moved;
        }
        Some((mass, ps, moved))
    };

    let steps;
    if record {
        // Per-slot loop: one trajectory row per uplink slot.
        goal_trajectory.reserve((ttl as usize).min(total) + 1);
        goal_trajectory.push(goals.clone());

        // Which hop (if any) transmits in each frame slot for this path.
        let mut by_slot: Vec<Option<usize>> = vec![None; f_up];
        for (hop, h) in problem.hops().iter().enumerate() {
            by_slot[h.frame_slot()] = Some(hop);
        }

        let mut counted = 0u64;
        for step in 1..=total {
            counted += 1;
            let frame_slot = (step - 1) % f_up;
            let cycle = (step - 1) / f_up;
            if let Some(hop) = by_slot[frame_slot] {
                if let Some((mass, ps, moved)) = transmit(
                    hop,
                    cycle,
                    frame_slot,
                    &mut position,
                    &mut goals,
                    &mut expected_transmissions,
                ) {
                    observe(StepEvent::Transmission {
                        hop,
                        mass,
                        success: ps,
                        moved,
                    });
                }
            }
            goal_trajectory.push(goals.clone());
            if frame_slot + 1 == f_up {
                observe(StepEvent::CycleEnd {
                    cycle,
                    goal_mass: goals[cycle],
                    delivered: goals.iter().sum(),
                    in_flight: position.iter().sum(),
                });
            }
            // TTL expiry: the message is dropped once it has lived `ttl`
            // uplink slots without reaching the gateway. Goals can no
            // longer change, so the recorded trajectory ends here.
            if step as u32 >= ttl {
                observe(StepEvent::Discard {
                    step,
                    in_flight: &position,
                });
                discard += sum_lanes4(&position);
                position.iter_mut().for_each(|p| *p = 0.0);
                break;
            }
        }
        steps = counted;
    } else {
        // Event-driven loop: visit scheduled transmissions and cycle
        // boundaries only. The builder guarantees `0 < ttl <= total` and
        // hop slots strictly increasing, so the TTL always expires inside
        // some cycle and transmissions replay in exactly the per-slot
        // loop's order; within one step the per-slot loop fires
        // transmission, then cycle end, then discard, replicated here.
        let ttl = ttl as usize;
        'cycles: for cycle in 0..cycles {
            let base = cycle * f_up;
            for (hop, h) in problem.hops().iter().enumerate() {
                let step = base + h.frame_slot() + 1;
                if step > ttl {
                    break;
                }
                if let Some((mass, ps, moved)) = transmit(
                    hop,
                    cycle,
                    h.frame_slot(),
                    &mut position,
                    &mut goals,
                    &mut expected_transmissions,
                ) {
                    observe(StepEvent::Transmission {
                        hop,
                        mass,
                        success: ps,
                        moved,
                    });
                }
            }
            if base + f_up <= ttl {
                observe(StepEvent::CycleEnd {
                    cycle,
                    goal_mass: goals[cycle],
                    delivered: goals.iter().sum(),
                    in_flight: position.iter().sum(),
                });
            }
            if ttl <= base + f_up {
                observe(StepEvent::Discard {
                    step: ttl,
                    in_flight: &position,
                });
                discard += sum_lanes4(&position);
                position.iter_mut().for_each(|p| *p = 0.0);
                break 'cycles;
            }
        }
        steps = ttl.min(total) as u64;
    }
    // Mass still in flight at the end of the interval is lost.
    discard += sum_lanes4(&position);

    let evaluation = PathEvaluation {
        cycle_probabilities: goals.iter().copied().collect(),
        discard_probability: discard,
        arrival_slot_number: problem.arrival_slot_number(),
        hop_count: n,
        superframe: problem.superframe(),
        interval: problem.interval(),
        goal_trajectory,
        trajectory_len: if record { total + 1 } else { 0 },
        expected_transmissions,
    };
    (evaluation, steps)
}

/// Builder for [`PathModel`]; see [`PathModel::builder`].
#[derive(Debug, Clone, Default)]
pub struct PathModelBuilder {
    hops: Vec<(LinkDynamics, usize)>,
    superframe: Option<Superframe>,
    interval: ReportingInterval,
    ttl: Option<u32>,
}

impl PathModelBuilder {
    /// Adds the next hop of the path with its 0-based frame slot.
    pub fn add_hop(&mut self, dynamics: LinkDynamics, frame_slot: usize) -> &mut Self {
        self.hops.push((dynamics, frame_slot));
        self
    }

    /// Sets the super-frame (required).
    pub fn superframe(&mut self, superframe: Superframe) -> &mut Self {
        self.superframe = Some(superframe);
        self
    }

    /// Sets the reporting interval (defaults to the paper's `Is = 4`).
    pub fn interval(&mut self, interval: ReportingInterval) -> &mut Self {
        self.interval = interval;
        self
    }

    /// Overrides the TTL in uplink slots (defaults to `Is * F_up`, one full
    /// reporting interval). Values above `Is * F_up` are capped by the
    /// evaluation horizon — the interval ends regardless.
    pub fn ttl(&mut self, ttl: u32) -> &mut Self {
        self.ttl = Some(ttl);
        self
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Inconsistent`] if no hops were added, the
    /// super-frame is missing, a slot lies outside the uplink half, two
    /// hops share a slot, or the hops' slots are not in path order within
    /// the frame (the construction used by every schedule in the paper; a
    /// message can then traverse the whole path in one cycle).
    pub fn build(&self) -> Result<PathModel> {
        let superframe = self.superframe.ok_or_else(|| ModelError::Inconsistent {
            reason: "a super-frame is required".into(),
        })?;
        if self.hops.is_empty() {
            return Err(ModelError::Inconsistent {
                reason: "a path needs at least one hop".into(),
            });
        }
        let f_up = superframe.uplink_slots() as usize;
        let mut seen = vec![false; f_up];
        let mut last_slot = None;
        for (hop, &(_, slot)) in self.hops.iter().enumerate() {
            if slot >= f_up {
                return Err(ModelError::Inconsistent {
                    reason: format!("hop {hop} scheduled in slot {slot}, uplink half is {f_up}"),
                });
            }
            if seen[slot] {
                return Err(ModelError::Inconsistent {
                    reason: format!("two hops share frame slot {slot}"),
                });
            }
            seen[slot] = true;
            if let Some(prev) = last_slot {
                if slot <= prev {
                    return Err(ModelError::Inconsistent {
                        reason: format!(
                            "hop {hop} scheduled at slot {slot} before its predecessor's slot {prev}"
                        ),
                    });
                }
            }
            last_slot = Some(slot);
        }
        let interval = self.interval;
        let horizon = interval.cycles() * superframe.uplink_slots();
        let ttl = self.ttl.unwrap_or(horizon).min(horizon);
        if ttl == 0 {
            return Err(ModelError::Inconsistent {
                reason: "ttl must be positive".into(),
            });
        }
        Ok(PathModel {
            dynamics: self.hops.iter().map(|(d, _)| d.clone()).collect(),
            hop_slots: self
                .hops
                .iter()
                .enumerate()
                .map(|(hop, &(_, slot))| HopSlot { slot, hop })
                .collect(),
            superframe,
            interval,
            ttl,
        })
    }
}

/// The result of [`PathModel::evaluate`]: the absorption probabilities of
/// the path DTMC, plus everything the measures of Section V need.
///
/// Scalar measures are always present; the per-slot goal trajectory is
/// only attached when the evaluation was run with
/// [`MeasurePlan::WITH_TRAJECTORY`], and even then only the rows up to
/// the TTL expiry are stored (goals are constant afterwards).
#[derive(Debug, Clone, PartialEq)]
pub struct PathEvaluation {
    cycle_probabilities: Pmf,
    discard_probability: f64,
    arrival_slot_number: u32,
    hop_count: usize,
    superframe: Superframe,
    interval: ReportingInterval,
    /// Recorded rows: one per uplink slot up to the TTL expiry, empty
    /// when the trajectory was not requested.
    goal_trajectory: Vec<Vec<f64>>,
    /// Logical trajectory length (`Is * F_up + 1` rows when recorded,
    /// 0 otherwise); [`PathEvaluation::trajectory`] pads to this.
    trajectory_len: usize,
    expected_transmissions: f64,
}

impl PathEvaluation {
    /// The cycle probability function `g`: entry `i` is the probability the
    /// message reaches the destination in cycle `i + 1` (the transient
    /// probability of goal state `R_{a0 + i * F_up}` at the end of the
    /// interval).
    pub fn cycle_probabilities(&self) -> &Pmf {
        &self.cycle_probabilities
    }

    /// Probability the message is discarded (TTL expiry / interval end).
    pub fn discard_probability(&self) -> f64 {
        self.discard_probability
    }

    /// The 1-based frame slot at which arrivals happen (`a0`).
    pub fn arrival_slot_number(&self) -> u32 {
        self.arrival_slot_number
    }

    /// The same evaluation re-anchored at a different arrival slot:
    /// every measure is cloned verbatim (bit-identical — nothing is
    /// recomputed, unlike [`crate::compose::evaluation_at_slot`], which
    /// re-derives the attempt count from the cycle function) and only
    /// `arrival_slot_number` is replaced.
    ///
    /// This is the engine-side rebase step of slot-shift
    /// canonicalization: a shift-normalized problem
    /// ([`crate::ir::PathProblem::shift_normalized`]) evaluates to the
    /// same bits as the original in every field except `a0`, so the
    /// cached canonical evaluation plus this rebase reproduces the
    /// original solve exactly.
    ///
    /// # Panics
    ///
    /// If `arrival_slot_number` lies outside the uplink half
    /// `1..=F_up` (debug builds only).
    pub fn rebased_at_slot(&self, arrival_slot_number: u32) -> PathEvaluation {
        debug_assert!(
            (1..=self.superframe.uplink_slots()).contains(&arrival_slot_number),
            "arrival slot {arrival_slot_number} outside the uplink half"
        );
        PathEvaluation {
            arrival_slot_number,
            ..self.clone()
        }
    }

    /// Number of hops of the evaluated path.
    pub fn hop_count(&self) -> usize {
        self.hop_count
    }

    /// The super-frame the path was evaluated under.
    pub fn superframe(&self) -> Superframe {
        self.superframe
    }

    /// The reporting interval the path was evaluated under.
    pub fn interval(&self) -> ReportingInterval {
        self.interval
    }

    /// The exact expected number of slots in which this path's message was
    /// actually transmitted during the interval (successful or not) — the
    /// literal reading of Eq. 10's prose, and what the Monte-Carlo
    /// simulator's slot counter estimates. Lost messages contribute their
    /// true attempt count, unlike the published Table II convention (see
    /// [`crate::UtilizationConvention`]).
    pub fn expected_transmissions(&self) -> f64 {
        self.expected_transmissions
    }

    /// Exact utilization: [`PathEvaluation::expected_transmissions`] over
    /// the interval's uplink slots.
    pub fn exact_utilization(&self) -> f64 {
        self.expected_transmissions
            / f64::from(self.interval.cycles() * self.superframe.uplink_slots())
    }

    /// Whether this evaluation carries a goal trajectory (i.e. it was
    /// produced under [`MeasurePlan::WITH_TRAJECTORY`]).
    pub fn has_trajectory(&self) -> bool {
        self.trajectory_len > 0
    }

    /// The transient probability of each goal state after every uplink slot:
    /// `trajectory()[t][i]` is the probability that the message has reached
    /// goal `i + 1` within the first `t` uplink slots — the curves of the
    /// paper's Fig. 6. Rows after the TTL expiry repeat the final recorded
    /// row (goals are constant once the message is discarded). Empty
    /// unless the evaluation was run with
    /// [`MeasurePlan::WITH_TRAJECTORY`].
    pub fn trajectory(&self) -> Vec<Vec<f64>> {
        let mut rows = self.goal_trajectory.clone();
        if let Some(last) = rows.last().cloned() {
            while rows.len() < self.trajectory_len {
                rows.push(last.clone());
            }
        }
        rows
    }

    /// Constructs an evaluation from raw parts (used by the composition and
    /// prediction machinery, where cycle probabilities come from Eq. 12
    /// rather than a transient solve). The trajectory is left empty.
    pub(crate) fn from_parts(
        cycle_probabilities: Pmf,
        arrival_slot_number: u32,
        hop_count: usize,
        superframe: Superframe,
        interval: ReportingInterval,
    ) -> PathEvaluation {
        let discard_probability = 1.0 - cycle_probabilities.total_mass();
        let expected_transmissions = lost_charged_transmissions(
            &cycle_probabilities,
            discard_probability,
            hop_count,
            interval,
        );
        PathEvaluation::from_measures(
            cycle_probabilities,
            discard_probability,
            expected_transmissions,
            arrival_slot_number,
            hop_count,
            superframe,
            interval,
        )
    }

    /// Constructs an evaluation from externally computed measures (the
    /// explicit-chain and Monte-Carlo backends). No trajectory attached.
    pub(crate) fn from_measures(
        cycle_probabilities: Pmf,
        discard_probability: f64,
        expected_transmissions: f64,
        arrival_slot_number: u32,
        hop_count: usize,
        superframe: Superframe,
        interval: ReportingInterval,
    ) -> PathEvaluation {
        PathEvaluation {
            cycle_probabilities,
            discard_probability,
            arrival_slot_number,
            hop_count,
            superframe,
            interval,
            goal_trajectory: Vec::new(),
            trajectory_len: 0,
            expected_transmissions,
        }
    }
}

/// The [`crate::UtilizationConvention::LostCharged`] estimate of the
/// expected attempt count, derivable from the cycle function alone:
/// delivered messages are charged their minimum `n + i - 1` slots, lost
/// ones the worst case `n + Is - 1`.
pub(crate) fn lost_charged_transmissions(
    cycle_probabilities: &Pmf,
    discard_probability: f64,
    hop_count: usize,
    interval: ReportingInterval,
) -> f64 {
    let is = interval.cycles();
    let mut expected = discard_probability * (hop_count as f64 + f64::from(is) - 1.0);
    for cycle in 1..=is {
        expected += cycle_probabilities.get(cycle as usize - 1)
            * (hop_count as f64 + f64::from(cycle) - 1.0);
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_channel::LinkModel;
    use whart_net::typical::section_v_example;

    fn steady(pi: f64) -> LinkDynamics {
        LinkDynamics::steady(LinkModel::from_availability(pi, 0.9).unwrap())
    }

    /// The Section V-A model: 3 hops at slots 3, 6, 7 (1-based), F_up = 7.
    fn example_model(pi: f64, is: u32) -> PathModel {
        let mut b = PathModel::builder();
        b.add_hop(steady(pi), 2)
            .add_hop(steady(pi), 5)
            .add_hop(steady(pi), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(is).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn fig6_goal_probabilities() {
        // Section V-A: pi(up) = 0.75, Is = 4 -> goal probabilities
        // 0.4219 / 0.3164 / 0.1582 / 0.06592, R = 0.9624.
        let eval = example_model(0.75, 4).evaluate();
        let g = eval.cycle_probabilities();
        assert!((g.get(0) - 0.4219).abs() < 1e-4, "{}", g.get(0));
        assert!((g.get(1) - 0.3164).abs() < 1e-4);
        assert!((g.get(2) - 0.1582).abs() < 1e-4);
        assert!((g.get(3) - 0.06592).abs() < 1e-5);
        assert!((g.total_mass() - 0.9624).abs() < 1e-4);
        assert!((eval.discard_probability() - 0.0376).abs() < 1e-4);
        assert_eq!(eval.arrival_slot_number(), 7);
    }

    #[test]
    fn matches_negative_binomial_closed_form() {
        // Steady homogeneous links with an in-order schedule follow the
        // negative binomial distribution exactly.
        for &pi in &[0.693, 0.83, 0.948] {
            for is in 1..=5 {
                let eval = example_model(pi, is).evaluate();
                let nb = Pmf::negative_binomial(pi, 3, is as usize).unwrap();
                for i in 0..is as usize {
                    assert!(
                        (eval.cycle_probabilities().get(i) - nb.get(i)).abs() < 1e-12,
                        "pi={pi} is={is} cycle={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn trajectory_is_step_shaped() {
        // Goals only jump at their arrival slots: goal 1 at step 7, goal 2 at
        // step 14, ... (Fig. 6's step curves).
        let eval = example_model(0.75, 4).evaluate_with(MeasurePlan::WITH_TRAJECTORY);
        assert!(eval.has_trajectory());
        let traj = eval.trajectory();
        assert_eq!(traj.len(), 29);
        assert_eq!(traj[0], vec![0.0; 4]);
        assert_eq!(traj[6][0], 0.0);
        assert!((traj[7][0] - 0.421875).abs() < 1e-12);
        assert_eq!(traj[13][1], 0.0);
        assert!((traj[14][1] - 0.31640625).abs() < 1e-9);
        // Goal probabilities are non-decreasing in time.
        for w in traj.windows(2) {
            for (before, after) in w[0].iter().zip(&w[1]) {
                assert!(*after >= before - 1e-15);
            }
        }
        // Final trajectory row equals the cycle probabilities.
        for (i, p) in traj[28].iter().enumerate() {
            assert!((p - eval.cycle_probabilities().get(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn one_hop_path_is_geometric() {
        let mut b = PathModel::builder();
        b.add_hop(steady(0.903), 0);
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        let eval = b.build().unwrap().evaluate();
        let g = Pmf::geometric(0.903, 4).unwrap();
        for i in 0..4 {
            assert!((eval.cycle_probabilities().get(i) - g.get(i)).abs() < 1e-12);
        }
        assert_eq!(eval.arrival_slot_number(), 1);
    }

    #[test]
    fn slot1_transmissions_fire_in_cycle_one() {
        // The network evaluation requires a transmission scheduled in the
        // very first slot to be able to serve the message born that cycle
        // (path 1 under eta_a reaches the gateway in cycle 1 with p).
        let mut b = PathModel::builder();
        b.add_hop(steady(0.83), 0);
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::new(1).unwrap());
        let eval = b.build().unwrap().evaluate();
        assert!((eval.cycle_probabilities().get(0) - 0.83).abs() < 1e-12);
    }

    #[test]
    fn ttl_expiry_discards_early() {
        // TTL of one frame: only the first cycle can deliver.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.75), 2)
            .add_hop(steady(0.75), 5)
            .add_hop(steady(0.75), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap())
            .ttl(7);
        let eval = b
            .build()
            .unwrap()
            .evaluate_with(MeasurePlan::WITH_TRAJECTORY);
        assert!((eval.cycle_probabilities().get(0) - 0.75f64.powi(3)).abs() < 1e-12);
        assert_eq!(eval.cycle_probabilities().get(1), 0.0);
        assert!((eval.discard_probability() - (1.0 - 0.75f64.powi(3))).abs() < 1e-12);
        // The returned trajectory still spans the whole interval, but only
        // the rows up to the TTL expiry are stored.
        let traj = eval.trajectory();
        assert_eq!(traj.len(), 29);
        for row in &traj[7..] {
            assert_eq!(row, &traj[7]);
        }
        // Scalar evaluations carry no trajectory at all.
        let scalar = example_model(0.75, 4).evaluate();
        assert!(!scalar.has_trajectory());
        assert!(scalar.trajectory().is_empty());
    }

    #[test]
    fn mass_is_conserved() {
        let eval = example_model(0.83, 4).evaluate();
        let total = eval.cycle_probabilities().total_mass() + eval.discard_probability();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_network_matches_hand_built() {
        let link = LinkModel::from_availability(0.75, 0.9).unwrap();
        let (topology, path, schedule, superframe) = section_v_example(link).unwrap();
        let model = PathModel::from_network(
            &topology,
            std::slice::from_ref(&path),
            &schedule,
            superframe,
            ReportingInterval::new(4).unwrap(),
            0,
        )
        .unwrap();
        let eval = model.evaluate();
        let want = example_model(0.75, 4).evaluate();
        assert_eq!(eval.cycle_probabilities(), want.cycle_probabilities());
    }

    #[test]
    fn builder_validates() {
        let sf = Superframe::symmetric(7).unwrap();
        // No hops.
        let mut b = PathModel::builder();
        b.superframe(sf);
        assert!(b.build().is_err());
        // Missing super-frame.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.8), 0);
        assert!(b.build().is_err());
        // Slot out of range.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.8), 9);
        b.superframe(sf);
        assert!(b.build().is_err());
        // Duplicate slot.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.8), 1).add_hop(steady(0.8), 1);
        b.superframe(sf);
        assert!(b.build().is_err());
        // Out-of-order hops.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.8), 5).add_hop(steady(0.8), 2);
        b.superframe(sf);
        assert!(b.build().is_err());
        // Zero TTL.
        let mut b = PathModel::builder();
        b.add_hop(steady(0.8), 0);
        b.superframe(sf).ttl(0);
        assert!(b.build().is_err());
    }

    #[test]
    fn success_probability_uses_link_dynamics() {
        let model = example_model(0.83, 4);
        for hop in 0..3 {
            for cycle in 0..4 {
                assert!((model.success_probability(hop, cycle) - 0.83).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inhomogeneous_links_differ_from_homogeneous() {
        let mut b = PathModel::builder();
        b.add_hop(steady(0.95), 2)
            .add_hop(steady(0.70), 5)
            .add_hop(steady(0.85), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        let eval = b.build().unwrap().evaluate();
        // First-cycle probability is the product of the three availabilities.
        assert!(
            (eval.cycle_probabilities().get(0) - 0.95 * 0.70 * 0.85).abs() < 1e-12,
            "{}",
            eval.cycle_probabilities().get(0)
        );
    }
}
