//! The hierarchical DTMC performance model of WirelessHART networks —
//! a from-scratch reproduction of Remke & Wu, *"WirelessHART Modeling and
//! Performance Evaluation"* (DSN 2013).
//!
//! The model is hierarchical: two-state link DTMCs (from
//! [`whart_channel`]) feed their transient UP probabilities into an
//! absorbing path DTMC driven by the TDMA communication schedule (from
//! [`whart_net`]). From the path chain's absorption probabilities every
//! quality-of-service measure of the paper follows.
//!
//! * [`PathModel`] — the hierarchical path model (Section IV) with the
//!   fast transient evaluator (Eq. 5);
//! * [`ir`] — the compiled problem IR ([`PathProblem`] /
//!   [`NetworkProblem`]) and the pluggable [`Solver`] backends
//!   ([`FastSolver`], [`ExplicitSolver`], and `whart-sim`'s Monte-Carlo
//!   adapter), plus the [`MeasurePlan`] for demand-driven artifacts;
//! * [`explicit`] — Algorithm 1's explicit unrolled DTMC (Figs. 4-5),
//!   equivalent to the fast evaluator and exportable to Graphviz;
//! * [`PathEvaluation`] — reachability (Eq. 6), delay distribution and
//!   expectation (Eqs. 7-9), utilization (Eq. 10), time-to-first-loss;
//! * [`NetworkModel`] — per-path evaluation of a whole network plus the
//!   aggregates of Section VI (overall delay `Gamma`, network utilization);
//! * [`compose`] — path compositionality (Eq. 12) and the performance
//!   prediction / routing advice of Section VI-E;
//! * [`failure`] — the robustness studies of Section VI-C;
//! * [`closed_loop`] — round-trip control-cycle analysis (the paper's
//!   `0.4219^2 = 0.178` one-cycle-loop figure, generalized);
//! * [`sensitivity`] — link-repair priority ranking (quantifying the
//!   paper's "improve the bottleneck" advice);
//! * [`sweeps`] — the parameter sweeps behind Figs. 8-10, 18 and Table I;
//! * [`LinkDynamics`] — steady, transient or outage-afflicted link
//!   behaviour feeding the evaluator.
//!
//! # Example
//!
//! The paper's Section V example path, end to end:
//!
//! ```
//! use whart_model::{DelayConvention, LinkDynamics, PathModel};
//! use whart_channel::LinkModel;
//! use whart_net::{ReportingInterval, Superframe};
//!
//! # fn main() -> Result<(), whart_model::ModelError> {
//! let link = LinkModel::from_availability(0.75, 0.9)?;
//! let mut builder = PathModel::builder();
//! builder
//!     .add_hop(LinkDynamics::steady(link), 2) // <n1,n2> in slot 3
//!     .add_hop(LinkDynamics::steady(link), 5) // <n2,n3> in slot 6
//!     .add_hop(LinkDynamics::steady(link), 6) // <n3,G>  in slot 7
//!     .superframe(Superframe::symmetric(7)?)
//!     .interval(ReportingInterval::new(4)?);
//! let evaluation = builder.build()?.evaluate();
//!
//! assert!((evaluation.reachability() - 0.9624).abs() < 1e-4);
//! let delay = evaluation.expected_delay_ms(DelayConvention::Absolute).unwrap();
//! assert!((delay - 190.8).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod error;
mod measures;
mod network;
mod path;

pub mod closed_loop;
pub mod compose;
pub mod explain;
pub mod explicit;
pub mod failure;
pub mod ir;
pub mod sensitivity;
pub mod signature;
pub mod sweeps;

pub use dynamics::{LinkDynamics, Outage};
pub use error::{ModelError, Result};
pub use explain::{explain_path, DelayComponent, HopBreakdown, PathExplanation};
pub use ir::{
    ExplicitSolver, FastSolver, MeasurePlan, NetworkProblem, PathProblem, ProblemHop, Solver,
};
pub use measures::{DelayConvention, UtilizationConvention};
pub use network::{NetworkEvaluation, NetworkModel, PathReport};
pub use path::{PathEvaluation, PathModel, PathModelBuilder};
