//! Per-hop breakdown of a compiled path problem — the analysis behind
//! `whart explain`.
//!
//! [`explain_path`] runs the fast transient evaluator once with the
//! step observer attached and decomposes the headline measures into
//! their per-hop and per-cycle components:
//!
//! * **per hop** — the channel provenance (the resolved `p_fl`/`p_rc`,
//!   stationary availability, the Eq. 2-inverted BER and, when
//!   invertible, the implied `Eb/N0`) alongside the solve-derived
//!   expected transmission attempts, expected failed attempts, and the
//!   discard-attributed loss mass stranded before that hop;
//! * **per cycle** — the transition mass `g_i` into each cycle's goal
//!   state, its absolute delay, and its contribution to the conditional
//!   expected delay (`g_i / R · d_i`).
//!
//! The loss masses sum to `1 − R` (the discard probability) and the
//! delay contributions sum to `E[delay | delivered]`, so the breakdown
//! is a true decomposition, not an approximation.

use whart_channel::{ber_from_failure_probability, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_net::NodeId;

use crate::ir::{MeasurePlan, PathProblem};
use crate::measures::DelayConvention;
use crate::path::{fast_evaluate_observed, PathEvaluation, StepEvent};

/// One hop's share of the path's behaviour: channel provenance plus
/// the solve-derived attempt/failure/loss statistics.
#[derive(Debug, Clone)]
pub struct HopBreakdown {
    /// 0-based hop index along the path (source side first).
    pub hop: usize,
    /// The physical link's endpoints, when the problem was compiled
    /// from a network model.
    pub link: Option<(NodeId, NodeId)>,
    /// The 0-based uplink frame slot the schedule grants this hop.
    pub frame_slot: usize,
    /// The link DTMC's failure probability (UP → DOWN).
    pub p_fl: f64,
    /// The link DTMC's recovery probability (DOWN → UP).
    pub p_rc: f64,
    /// The stationary availability `p_rc / (p_fl + p_rc)`.
    pub availability: f64,
    /// The initial UP probability of the hop's [`crate::LinkDynamics`].
    pub initial_up: f64,
    /// The bit error rate implied by `p_fl` at the standard 127-byte
    /// WirelessHART message (Eq. 2 inverted).
    pub ber: f64,
    /// The `Eb/N0` (linear) the OQPSK AWGN curve requires for that
    /// BER, when the inversion is defined.
    pub snr: Option<f64>,
    /// Number of scheduled outage windows on this hop's dynamics.
    pub outages: usize,
    /// Expected number of transmission attempts on this hop per packet.
    pub expected_attempts: f64,
    /// Expected number of failed attempts on this hop per packet.
    pub expected_failures: f64,
    /// Probability the packet dies waiting to cross this hop (its TTL
    /// expires with the packet stranded before the hop).
    pub loss_mass: f64,
}

/// One delivery cycle's share of the expected delay.
#[derive(Debug, Clone, Copy)]
pub struct DelayComponent {
    /// 1-based delivery cycle (`i` in Eq. 6's `g_i`).
    pub cycle: u32,
    /// Unconditional probability `g_i` of delivery in this cycle.
    pub probability: f64,
    /// Absolute delay of a cycle-`i` delivery in milliseconds.
    pub delay_ms: f64,
    /// This cycle's contribution `g_i / R · d_i` to the conditional
    /// expected delay.
    pub contribution_ms: f64,
}

/// The full per-hop / per-cycle decomposition of a path evaluation.
#[derive(Debug, Clone)]
pub struct PathExplanation {
    evaluation: PathEvaluation,
    hops: Vec<HopBreakdown>,
    cycles: Vec<DelayComponent>,
}

impl PathExplanation {
    /// The headline evaluation the breakdown decomposes — bit-identical
    /// to [`crate::FastSolver`]'s result for the same problem.
    pub fn evaluation(&self) -> &PathEvaluation {
        &self.evaluation
    }

    /// Per-hop breakdown, source side first.
    pub fn hops(&self) -> &[HopBreakdown] {
        &self.hops
    }

    /// Per-cycle delay decomposition (cycles with zero delivery mass
    /// included, so indices line up with Eq. 6's `g_i`).
    pub fn cycles(&self) -> &[DelayComponent] {
        &self.cycles
    }

    /// The hop where the largest share of lost packets dies, if any
    /// mass is lost at all.
    pub fn dominant_loss_hop(&self) -> Option<usize> {
        self.hops
            .iter()
            .max_by(|a, b| a.loss_mass.total_cmp(&b.loss_mass))
            .filter(|h| h.loss_mass > 0.0)
            .map(|h| h.hop)
    }

    /// Total loss mass across hops — equals the discard probability
    /// `1 − R` up to floating-point round-off.
    pub fn total_loss(&self) -> f64 {
        self.hops.iter().map(|h| h.loss_mass).sum()
    }

    /// Sum of the per-cycle contributions — equals
    /// `E[delay | delivered]` up to floating-point round-off.
    pub fn expected_delay_ms(&self) -> Option<f64> {
        if self.evaluation.reachability() <= 0.0 {
            return None;
        }
        Some(self.cycles.iter().map(|c| c.contribution_ms).sum())
    }
}

/// Evaluates `problem` with the fast solver and decomposes the result
/// per hop and per delivery cycle.
pub fn explain_path(problem: &PathProblem, convention: DelayConvention) -> PathExplanation {
    let n = problem.hop_count();
    let mut attempts = vec![0.0f64; n];
    let mut failures = vec![0.0f64; n];
    let mut loss = vec![0.0f64; n];
    let (evaluation, _steps) =
        fast_evaluate_observed(problem, MeasurePlan::SCALAR, |event| match event {
            StepEvent::Transmission {
                hop, mass, moved, ..
            } => {
                attempts[hop] += mass;
                failures[hop] += mass - moved;
            }
            StepEvent::CycleEnd { .. } => {}
            StepEvent::Discard { in_flight, .. } => loss.copy_from_slice(in_flight),
        });

    let hops = problem
        .hops()
        .iter()
        .enumerate()
        .map(|(hop, h)| {
            let model = h.dynamics().model();
            let ber = if model.p_fl() < 1.0 {
                ber_from_failure_probability(model.p_fl(), WIRELESSHART_MESSAGE_BITS)
            } else {
                1.0
            };
            HopBreakdown {
                hop,
                link: h.link(),
                frame_slot: h.frame_slot(),
                p_fl: model.p_fl(),
                p_rc: model.p_rc(),
                availability: model.availability(),
                initial_up: h.dynamics().initial().up(),
                ber,
                snr: Modulation::Oqpsk.required_snr(ber).map(|e| e.linear()),
                outages: h.dynamics().outages().len(),
                expected_attempts: attempts[hop],
                expected_failures: failures[hop],
                loss_mass: loss[hop],
            }
        })
        .collect();

    let r = evaluation.reachability();
    let cycles = evaluation
        .cycle_probabilities()
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            let cycle = i as u32 + 1;
            let delay_ms = evaluation.delay_ms(cycle, convention);
            DelayComponent {
                cycle,
                probability: g,
                delay_ms,
                contribution_ms: if r > 0.0 { g / r * delay_ms } else { 0.0 },
            }
        })
        .collect();

    PathExplanation {
        evaluation,
        hops,
        cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FastSolver, Solver};
    use crate::sweeps::section_v_model;
    use whart_channel::LinkModel;
    use whart_net::ReportingInterval;
    use whart_obs::Metrics;

    fn problem(availability: f64) -> PathProblem {
        section_v_model(availability, ReportingInterval::REGULAR)
            .unwrap()
            .compile()
    }

    #[test]
    fn hop_provenance_matches_channel_model_directly() {
        let ex = explain_path(&problem(0.75), DelayConvention::Absolute);
        let expected = LinkModel::from_availability(0.75, 0.9).unwrap();
        assert_eq!(ex.hops().len(), 3);
        for hop in ex.hops() {
            assert_eq!(hop.p_fl, expected.p_fl());
            assert_eq!(hop.p_rc, expected.p_rc());
            assert_eq!(hop.availability, expected.availability());
            let roundtrip =
                whart_channel::message_failure_probability(hop.ber, WIRELESSHART_MESSAGE_BITS);
            assert!((roundtrip - hop.p_fl).abs() < 1e-12);
        }
    }

    #[test]
    fn evaluation_is_bit_identical_to_fast_solver() {
        let problem = problem(0.83);
        let ex = explain_path(&problem, DelayConvention::Absolute);
        let baseline = FastSolver
            .solve_path_observed(&problem, MeasurePlan::SCALAR, &Metrics::disabled())
            .unwrap();
        assert_eq!(
            ex.evaluation().cycle_probabilities().as_slice(),
            baseline.cycle_probabilities().as_slice()
        );
        assert_eq!(
            ex.evaluation().discard_probability(),
            baseline.discard_probability()
        );
    }

    #[test]
    fn loss_masses_sum_to_discard_probability() {
        let ex = explain_path(&problem(0.75), DelayConvention::Absolute);
        let discard = ex.evaluation().discard_probability();
        assert!((ex.total_loss() - discard).abs() < 1e-12);
        assert!(ex.dominant_loss_hop().is_some());
    }

    #[test]
    fn delay_contributions_sum_to_conditional_expectation() {
        let ex = explain_path(&problem(0.75), DelayConvention::Absolute);
        let expected = ex
            .evaluation()
            .expected_delay_ms(DelayConvention::Absolute)
            .unwrap();
        assert!((ex.expected_delay_ms().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn attempts_exceed_failures_on_every_hop() {
        let ex = explain_path(&problem(0.903), DelayConvention::Absolute);
        for hop in ex.hops() {
            assert!(hop.expected_attempts > 0.0);
            assert!(hop.expected_failures >= 0.0);
            assert!(hop.expected_attempts >= hop.expected_failures);
        }
    }
}
