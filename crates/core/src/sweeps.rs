//! Parameter sweeps behind the paper's single-path studies
//! (Sections V-B, V-C and VI-D).

use crate::dynamics::LinkDynamics;
use crate::error::Result;
use crate::measures::DelayConvention;
use crate::path::{PathEvaluation, PathModel};
use whart_channel::{LinkModel, WIRELESSHART_MESSAGE_BITS};
use whart_dtmc::ValueDistribution;
use whart_net::{ReportingInterval, Superframe};

/// The bit-error-rate operating points of the paper's evaluation; at the
/// WirelessHART message length and `p_rc = 0.9` these yield the stationary
/// availabilities the paper quotes as 0.693, 0.774, 0.83, 0.903 and 0.948.
pub const PAPER_BERS: [f64; 5] = [5e-4, 3e-4, 2e-4, 1e-4, 5e-5];

/// The exact stationary availabilities behind the paper's rounded values —
/// sweeps that compare against the paper's numbers must use these, not the
/// rounded ones (0.903 vs 0.90305 shifts Table I's expected delay by over
/// a millisecond).
pub fn paper_availabilities() -> [f64; 5] {
    PAPER_BERS.map(|ber| {
        LinkModel::from_ber(ber, WIRELESSHART_MESSAGE_BITS, LinkModel::DEFAULT_RECOVERY)
            .expect("paper operating points are valid")
            .availability()
    })
}

/// The Section V example path model: three homogeneous hops scheduled in
/// slots 3, 6 and 7 of a symmetric `F_up = 7` super-frame.
///
/// # Errors
///
/// Returns an error for an availability the default recovery probability
/// cannot reach (below 0.474).
pub fn section_v_model(availability: f64, interval: ReportingInterval) -> Result<PathModel> {
    let link = LinkModel::from_availability(availability, LinkModel::DEFAULT_RECOVERY)?;
    section_v_model_with_link(link, interval)
}

/// The Section V example path over an explicit link model (the
/// availability-parameterized [`section_v_model`] delegates here).
///
/// # Errors
///
/// Propagates path construction failures.
pub fn section_v_model_with_link(
    link: LinkModel,
    interval: ReportingInterval,
) -> Result<PathModel> {
    let mut b = PathModel::builder();
    b.add_hop(LinkDynamics::steady(link), 2)
        .add_hop(LinkDynamics::steady(link), 5)
        .add_hop(LinkDynamics::steady(link), 6);
    b.superframe(Superframe::symmetric(7)?).interval(interval);
    b.build()
}

/// An n-hop chain model with hop `k` in frame slot `k` and `F_up = hops`
/// (symmetric super-frame), used for the hop-count study (Fig. 10).
///
/// # Errors
///
/// Returns an error for `hops = 0` or an unreachable availability.
pub fn chain_model(hops: u32, availability: f64, interval: ReportingInterval) -> Result<PathModel> {
    let link = LinkModel::from_availability(availability, LinkModel::DEFAULT_RECOVERY)?;
    chain_model_with_link(hops, link, interval)
}

/// The n-hop chain over an explicit link model (the
/// availability-parameterized [`chain_model`] delegates here).
///
/// # Errors
///
/// Propagates path construction failures.
pub fn chain_model_with_link(
    hops: u32,
    link: LinkModel,
    interval: ReportingInterval,
) -> Result<PathModel> {
    let mut b = PathModel::builder();
    for k in 0..hops as usize {
        b.add_hop(LinkDynamics::steady(link), k);
    }
    b.superframe(Superframe::symmetric(hops.max(1))?)
        .interval(interval);
    b.build()
}

/// One point of an availability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityPoint {
    /// The stationary link availability `pi(up)`.
    pub availability: f64,
    /// The corresponding bit error rate at the WirelessHART message length
    /// (inverting Eqs. 2 and 4).
    pub ber: f64,
    /// The evaluated path.
    pub evaluation: PathEvaluation,
}

/// Sweeps the Section V example path over link availabilities (Fig. 8's
/// reachability curve and Fig. 9 / Table I's delay distributions).
///
/// # Errors
///
/// Propagates model construction failures for out-of-range availabilities.
pub fn sweep_availability(
    availabilities: &[f64],
    interval: ReportingInterval,
) -> Result<Vec<AvailabilityPoint>> {
    availabilities
        .iter()
        .map(|&availability| {
            let model = section_v_model(availability, interval)?;
            let link = LinkModel::from_availability(availability, LinkModel::DEFAULT_RECOVERY)?;
            let ber =
                whart_channel::ber_from_failure_probability(link.p_fl(), WIRELESSHART_MESSAGE_BITS);
            Ok(AvailabilityPoint {
                availability,
                ber,
                evaluation: model.evaluate(),
            })
        })
        .collect()
}

/// Sweeps hop counts at fixed availability (Fig. 10): returns
/// `(hops, reachability)` pairs.
///
/// # Errors
///
/// Propagates model construction failures.
pub fn sweep_hop_count(
    max_hops: u32,
    availability: f64,
    interval: ReportingInterval,
) -> Result<Vec<(u32, f64)>> {
    (1..=max_hops)
        .map(|hops| {
            let model = chain_model(hops, availability, interval)?;
            Ok((hops, model.evaluate().reachability()))
        })
        .collect()
}

/// Sweeps reporting intervals for a model builder (Section VI-D's fast
/// control): returns `(Is, reachability)` pairs.
///
/// # Errors
///
/// Propagates failures from `build`.
pub fn sweep_interval<F>(intervals: &[u32], mut build: F) -> Result<Vec<(u32, f64)>>
where
    F: FnMut(ReportingInterval) -> Result<PathModel>,
{
    intervals
        .iter()
        .map(|&is| {
            let model = build(ReportingInterval::new(is)?)?;
            Ok((is, model.evaluate().reachability()))
        })
        .collect()
}

/// A delay-distribution summary for one availability (the rows of Table I
/// and the series of Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySummary {
    /// Link availability.
    pub availability: f64,
    /// Reachability in percent.
    pub reachability_percent: f64,
    /// The normalized delay distribution.
    pub distribution: ValueDistribution,
    /// Expected delay in milliseconds.
    pub expected_delay_ms: f64,
}

/// Summarizes the delay behaviour of the Section V example path for each
/// availability (Table I / Fig. 9).
///
/// # Errors
///
/// Propagates model construction failures.
pub fn delay_summaries(
    availabilities: &[f64],
    interval: ReportingInterval,
    convention: DelayConvention,
) -> Result<Vec<DelaySummary>> {
    sweep_availability(availabilities, interval)?
        .into_iter()
        .map(|point| {
            let distribution = point.evaluation.delay_distribution(convention);
            let expected_delay_ms = point
                .evaluation
                .expected_delay_ms(convention)
                .unwrap_or(f64::NAN);
            Ok(DelaySummary {
                availability: point.availability,
                reachability_percent: point.evaluation.reachability() * 100.0,
                distribution,
                expected_delay_ms,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_reachability_points() {
        // Fig. 8's annotated points: (pi, R).
        let want = [0.924, 0.9737, 0.9907, 0.9989, 0.9999];
        let points =
            sweep_availability(&paper_availabilities(), ReportingInterval::REGULAR).unwrap();
        for (point, want_r) in points.iter().zip(want) {
            let r = point.evaluation.reachability();
            assert!(
                (r - want_r).abs() < 6e-4,
                "pi={}: {r} vs {want_r}",
                point.availability
            );
        }
        // Reachability increases with availability.
        for w in points.windows(2) {
            assert!(w[1].evaluation.reachability() > w[0].evaluation.reachability());
        }
    }

    #[test]
    fn ber_round_trips_through_the_sweep() {
        // The paper's BER operating points: 5e-4, 3e-4, 2e-4, 1e-4, 5e-5.
        let want = [5e-4, 3e-4, 2e-4, 1e-4, 5e-5];
        let points =
            sweep_availability(&paper_availabilities(), ReportingInterval::REGULAR).unwrap();
        for (point, want_ber) in points.iter().zip(want) {
            assert!(
                ((point.ber - want_ber) / want_ber).abs() < 0.02,
                "pi={}: ber {} vs {want_ber}",
                point.availability,
                point.ber
            );
        }
    }

    #[test]
    fn fig10_hop_count_points() {
        // Fig. 10: R(1) = 0.9992, R(2) = 0.9964, R(3) = 0.9907, R(4) = 0.9812.
        let want = [0.9992, 0.9964, 0.9907, 0.9812];
        let points = sweep_hop_count(4, 0.83, ReportingInterval::REGULAR).unwrap();
        for ((hops, r), want_r) in points.iter().zip(want) {
            assert!((r - want_r).abs() < 6e-4, "hops={hops}: {r} vs {want_r}");
        }
        // Monotone decreasing in hop count.
        for w in points.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
    }

    #[test]
    fn fig18_interval_sweep_one_hop() {
        // Fig. 18: a one-hop path at pi = 0.903 delivers with 0.903 / 0.99 /
        // 0.999+ per message as Is grows from 1 to 4.
        let points = sweep_interval(&[1, 2, 4], |is| chain_model(1, 0.903, is)).unwrap();
        assert!((points[0].1 - 0.903).abs() < 1e-3);
        assert!((points[1].1 - 0.9906).abs() < 1e-3);
        assert!(points[2].1 > 0.9999);
    }

    #[test]
    fn table1_via_delay_summaries() {
        let pis = paper_availabilities();
        let rows = delay_summaries(
            &pis[1..],
            ReportingInterval::REGULAR,
            DelayConvention::Absolute,
        )
        .unwrap();
        // The paper's Table I prints 113 ms at pi = 0.903; its own model
        // yields 114.5 (see measures::tests::table1_expected_delays).
        let want = [
            (97.37, 179.2),
            (99.07, 151.0),
            (99.89, 114.5),
            (99.99, 93.1),
        ];
        for (row, (want_r, want_d)) in rows.iter().zip(want) {
            assert!((row.reachability_percent - want_r).abs() < 0.011);
            assert!((row.expected_delay_ms - want_d).abs() < 0.5, "{row:?}");
        }
    }

    #[test]
    fn fig9_distributions_flatten_with_worse_links() {
        let pis = paper_availabilities();
        let rows = delay_summaries(
            &[pis[1], pis[4]],
            ReportingInterval::REGULAR,
            DelayConvention::Absolute,
        )
        .unwrap();
        // Better links concentrate mass on the first delay.
        let worse_first = rows[0].distribution.cdf(70.0);
        let better_first = rows[1].distribution.cdf(70.0);
        assert!(better_first > worse_first);
        // Worse links have a heavier tail.
        let worse_tail = 1.0 - rows[0].distribution.cdf(350.0);
        let better_tail = 1.0 - rows[1].distribution.cdf(350.0);
        assert!(worse_tail > better_tail);
    }

    #[test]
    fn invalid_parameters_surface_errors() {
        assert!(section_v_model(0.3, ReportingInterval::REGULAR).is_err());
        assert!(chain_model(0, 0.83, ReportingInterval::REGULAR).is_err());
        assert!(sweep_interval(&[0], |is| chain_model(1, 0.9, is)).is_err());
    }
}
