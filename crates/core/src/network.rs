//! Network-level evaluation (Section VI).
//!
//! A [`NetworkModel`] bundles a topology, its uplink paths, a communication
//! schedule, the super-frame and the reporting interval. Evaluation builds
//! one [`PathModel`] per path (the paper's per-path hierarchical DTMCs) and
//! computes the network aggregates: per-path reachability (Fig. 13), the
//! overall delay distribution `Gamma` and its mean (Eq. 13, Figs. 14-16),
//! and the network utilization `U` (Eq. 11, Table II).

use crate::dynamics::LinkDynamics;
use crate::error::{ModelError, Result};
use crate::ir::{FastSolver, MeasurePlan, NetworkProblem, PathProblem, Solver};
use crate::measures::{DelayConvention, UtilizationConvention};
use crate::path::{PathEvaluation, PathModel};
use std::collections::BTreeMap;
use std::sync::Arc;
use whart_dtmc::ValueDistribution;
use whart_net::typical::TypicalNetwork;
use whart_net::{Hop, NodeId, Path, ReportingInterval, Schedule, Superframe, Topology};

/// A fully specified WirelessHART network ready for evaluation.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    topology: Topology,
    paths: Vec<Path>,
    schedule: Schedule,
    superframe: Superframe,
    interval: ReportingInterval,
    overrides: BTreeMap<(NodeId, NodeId), LinkDynamics>,
}

impl NetworkModel {
    /// Creates a network model, validating the schedule against the
    /// topology and paths.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Net`] for schedule/topology inconsistencies
    /// and [`ModelError::Inconsistent`] if the schedule exceeds the uplink
    /// half.
    pub fn new(
        topology: Topology,
        paths: Vec<Path>,
        schedule: Schedule,
        superframe: Superframe,
        interval: ReportingInterval,
    ) -> Result<Self> {
        schedule.validate(&topology, &paths)?;
        if schedule.len() > superframe.uplink_slots() as usize {
            return Err(ModelError::Inconsistent {
                reason: format!(
                    "schedule has {} slots but the uplink half only {}",
                    schedule.len(),
                    superframe.uplink_slots()
                ),
            });
        }
        Ok(NetworkModel {
            topology,
            paths,
            schedule,
            superframe,
            interval,
            overrides: BTreeMap::new(),
        })
    }

    /// Builds the model of the paper's typical network (Fig. 12) under one
    /// of its schedules.
    ///
    /// # Errors
    ///
    /// See [`NetworkModel::new`].
    pub fn from_typical(
        network: &TypicalNetwork,
        schedule: Schedule,
        interval: ReportingInterval,
    ) -> Result<Self> {
        NetworkModel::new(
            network.topology.clone(),
            network.paths.clone(),
            schedule,
            network.superframe,
            interval,
        )
    }

    /// The evaluated paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The communication schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The super-frame.
    pub fn superframe(&self) -> Superframe {
        self.superframe
    }

    /// The reporting interval.
    pub fn interval(&self) -> ReportingInterval {
        self.interval
    }

    /// Overrides the dynamics of the (bidirectional) link between `a` and
    /// `b` — e.g. to force an outage window on link `e3` (Section VI-C) or
    /// start a link from the DOWN state. Every path crossing the link is
    /// affected.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Net`] if the nodes are not connected.
    pub fn override_link_dynamics(
        &mut self,
        a: NodeId,
        b: NodeId,
        dynamics: LinkDynamics,
    ) -> Result<()> {
        self.topology.link_for(Hop::new(a, b))?;
        self.overrides
            .insert(Hop::new(a, b).undirected_key(), dynamics);
        Ok(())
    }

    /// Builds the hierarchical path model of one path, applying any link
    /// overrides.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Inconsistent`] for an out-of-range index.
    pub fn path_model(&self, path_index: usize) -> Result<PathModel> {
        if path_index >= self.paths.len() {
            return Err(ModelError::Inconsistent {
                reason: format!("path index {path_index} out of range"),
            });
        }
        let mut builder = PathModel::builder();
        for (slot, hop) in self.schedule.slots_for_path(path_index) {
            let dynamics = match self.overrides.get(&hop.undirected_key()) {
                Some(d) => d.clone(),
                None => LinkDynamics::steady(self.topology.link_for(hop)?),
            };
            builder.add_hop(dynamics, slot);
        }
        builder.superframe(self.superframe).interval(self.interval);
        builder.build()
    }

    /// Compiles the problem of one path: the [`PathModel`] lowered to the
    /// IR, with the physical-link identity of every hop attached.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Inconsistent`] for an out-of-range index.
    pub fn path_problem(&self, path_index: usize) -> Result<PathProblem> {
        if path_index >= self.paths.len() {
            return Err(ModelError::Inconsistent {
                reason: format!("path index {path_index} out of range"),
            });
        }
        let mut builder = PathModel::builder();
        let mut links = Vec::new();
        for (slot, hop) in self.schedule.slots_for_path(path_index) {
            let dynamics = match self.overrides.get(&hop.undirected_key()) {
                Some(d) => d.clone(),
                None => LinkDynamics::steady(self.topology.link_for(hop)?),
            };
            builder.add_hop(dynamics, slot);
            links.push(hop.undirected_key());
        }
        builder.superframe(self.superframe).interval(self.interval);
        Ok(builder.build()?.into_problem(links))
    }

    /// Lowers the whole network to its compiled [`NetworkProblem`] — the
    /// object every solver backend consumes.
    ///
    /// # Errors
    ///
    /// Propagates the first path-model construction failure.
    pub fn compile(&self) -> Result<NetworkProblem> {
        let problems = (0..self.paths.len())
            .map(|i| self.path_problem(i))
            .collect::<Result<Vec<_>>>()?;
        Ok(NetworkProblem::new(self.paths.clone(), problems))
    }

    /// Evaluates every path with the fast backend. Path models are
    /// independent, so they are solved on parallel worker threads;
    /// equivalent to `FastSolver.solve_network(&self.compile()?, ..)`.
    ///
    /// # Errors
    ///
    /// Propagates the first path-model construction failure.
    pub fn evaluate(&self) -> Result<NetworkEvaluation> {
        FastSolver.solve_network(&self.compile()?, MeasurePlan::default())
    }
}

/// One path's evaluation inside a network.
///
/// The evaluation is immutable once solved and can be large (under
/// [`MeasurePlan::WITH_TRAJECTORY`] it carries the transient goal
/// trajectory), so it is shared behind an [`Arc`]:
/// batch evaluators that answer repeated paths from a cache hand out
/// references instead of deep copies. All read access goes through
/// `Deref`, so `report.evaluation.reachability()` reads as before.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// The route.
    pub path: Path,
    /// Its hierarchical-model evaluation.
    pub evaluation: Arc<PathEvaluation>,
}

/// The result of [`NetworkModel::evaluate`].
#[derive(Debug, Clone)]
pub struct NetworkEvaluation {
    reports: Vec<PathReport>,
}

impl NetworkEvaluation {
    /// Assembles an evaluation from per-path reports (path order), e.g.
    /// from an external evaluator that caches or batches the path solves.
    pub fn from_reports(reports: Vec<PathReport>) -> NetworkEvaluation {
        NetworkEvaluation { reports }
    }

    /// Per-path reports in path order.
    pub fn reports(&self) -> &[PathReport] {
        &self.reports
    }

    /// Per-path reachability probabilities (Fig. 13).
    pub fn reachabilities(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.evaluation.reachability())
            .collect()
    }

    /// Per-path expected delays in milliseconds (Figs. 15-16); `None` for
    /// unreachable paths.
    pub fn expected_delays_ms(&self, convention: DelayConvention) -> Vec<Option<f64>> {
        self.reports
            .iter()
            .map(|r| r.evaluation.expected_delay_ms(convention))
            .collect()
    }

    /// The overall delay distribution `Gamma`: the average of the per-path
    /// delay distributions (Fig. 14).
    pub fn overall_delay_distribution(&self, convention: DelayConvention) -> ValueDistribution {
        let dists: Vec<ValueDistribution> = self
            .reports
            .iter()
            .map(|r| r.evaluation.delay_distribution(convention))
            .collect();
        ValueDistribution::average(dists.iter())
    }

    /// The overall mean delay `E[Gamma]` (Eq. 13): the average of the
    /// per-path expected delays. `None` if any path is unreachable.
    pub fn mean_delay_ms(&self, convention: DelayConvention) -> Option<f64> {
        let delays = self.expected_delays_ms(convention);
        let mut total = 0.0;
        for d in &delays {
            total += (*d)?;
        }
        Some(total / delays.len() as f64)
    }

    /// The network utilization `U` (Eq. 11): the sum of per-path
    /// utilizations (Table II).
    pub fn utilization(&self, convention: UtilizationConvention) -> f64 {
        self.reports
            .iter()
            .map(|r| r.evaluation.utilization(convention))
            .sum()
    }

    /// The index of the path with the lowest reachability (the paper's
    /// "bottleneck": "the longest path with the lowest link availability").
    pub fn reachability_bottleneck(&self) -> Option<usize> {
        (0..self.reports.len()).min_by(|&a, &b| {
            self.reports[a]
                .evaluation
                .reachability()
                .partial_cmp(&self.reports[b].evaluation.reachability())
                .expect("reachabilities are finite")
        })
    }

    /// The index of the path with the highest expected delay (Fig. 15's
    /// path 10 under `eta_a`, Fig. 16's path 7 under `eta_b`).
    pub fn delay_bottleneck(&self, convention: DelayConvention) -> Option<usize> {
        let delays = self.expected_delays_ms(convention);
        (0..delays.len())
            .filter(|&i| delays[i].is_some())
            .max_by(|&a, &b| delays[a].partial_cmp(&delays[b]).expect("finite delays"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_channel::LinkModel;

    fn typical(pi: f64) -> TypicalNetwork {
        TypicalNetwork::new(LinkModel::from_availability(pi, 0.9).unwrap())
    }

    fn eval_a(pi: f64) -> NetworkEvaluation {
        let net = typical(pi);
        let model =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap();
        model.evaluate().unwrap()
    }

    #[test]
    fn fig13_reachability_shape() {
        // Reachability decreases with hop count and increases with
        // availability; at pi = 0.903 even 3-hop paths exceed 0.999.
        let eval = eval_a(0.903);
        let r = eval.reachabilities();
        assert_eq!(r.len(), 10);
        assert!(r[0] > r[3] && r[3] > r[9]);
        // Fig. 8's marked point for the 3-hop path at pi = 0.903: R = 0.9989.
        assert!((r[9] - 0.9989).abs() < 2e-4, "{}", r[9]);
        // At pi = 0.693 the 3-hop paths drop towards 0.93.
        let r = eval_a(0.693).reachabilities();
        assert!((r[9] - 0.9238).abs() < 2e-3, "{}", r[9]);
    }

    #[test]
    fn fig14_first_cycle_fractions() {
        // 70.8% of messages arrive in the first cycle, 21.7% in the second
        // (pi = 0.83).
        let eval = eval_a(0.83);
        let gamma = eval.overall_delay_distribution(DelayConvention::Absolute);
        // First cycle: delays up to 200 ms (slots 1..19 of cycle 1; the
        // earliest second-cycle arrival is at 410 ms).
        let first = gamma.cdf(200.0);
        let second = gamma.cdf(600.0) - first;
        // The distribution is conditioned on delivery; the paper's 70.8%
        // counts all generated messages, so scale by the mean reachability.
        let mean_r = eval.reachabilities().iter().sum::<f64>() / 10.0;
        assert!((first * mean_r - 0.708).abs() < 2e-3, "{}", first * mean_r);
        assert!(
            (second * mean_r - 0.217).abs() < 3e-3,
            "{}",
            second * mean_r
        );
    }

    #[test]
    fn fig15_expected_delays_eta_a() {
        let eval = eval_a(0.83);
        let delays = eval.expected_delays_ms(DelayConvention::Absolute);
        // Path 10 is the bottleneck at ~421 ms.
        let d10 = delays[9].unwrap();
        assert!((d10 - 421.4).abs() < 1.0, "{d10}");
        assert_eq!(eval.delay_bottleneck(DelayConvention::Absolute), Some(9));
        // E[Gamma] ~ 235 ms.
        let mean = eval.mean_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((mean - 235.0).abs() < 1.5, "{mean}");
    }

    #[test]
    fn fig16_expected_delays_eta_b() {
        let net = typical(0.83);
        let model =
            NetworkModel::from_typical(&net, net.schedule_eta_b(), ReportingInterval::REGULAR)
                .unwrap();
        let eval = model.evaluate().unwrap();
        let delays = eval.expected_delays_ms(DelayConvention::Absolute);
        // Path 10 drops from 421 to ~291 ms; path 7 becomes the bottleneck
        // at ~318 ms.
        assert!((delays[9].unwrap() - 291.0).abs() < 1.5, "{:?}", delays[9]);
        assert!((delays[6].unwrap() - 318.0).abs() < 1.5, "{:?}", delays[6]);
        assert_eq!(eval.delay_bottleneck(DelayConvention::Absolute), Some(6));
        // E[Gamma] rises to ~272 ms but the delays are better balanced.
        let mean = eval.mean_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((mean - 272.0).abs() < 1.5, "{mean}");
    }

    #[test]
    fn table2_utilization() {
        // Table II: utilization vs availability.
        let cases = [
            (0.693, 0.313),
            (0.774, 0.297),
            (0.83, 0.283),
            (0.903, 0.263),
            (0.948, 0.25),
            (0.989, 0.24),
        ];
        for (pi, want) in cases {
            let u = eval_a(pi).utilization(UtilizationConvention::AsEvaluated);
            assert!((u - want).abs() < 3e-3, "pi={pi}: {u} vs {want}");
        }
    }

    #[test]
    fn bottleneck_is_longest_weakest_path() {
        let eval = eval_a(0.83);
        // Paths 9 and 10 (indices 8, 9) are the 3-hop paths; either is the
        // reachability bottleneck (they tie under homogeneous links).
        let b = eval.reachability_bottleneck().unwrap();
        assert!(b == 8 || b == 9);
    }

    #[test]
    fn link_override_affects_crossing_paths_only() {
        let net = typical(0.83);
        let mut model =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap();
        // Degrade e3 = (n3, G) to availability 0.5.
        let degraded = LinkModel::from_availability(0.5, 0.9).unwrap();
        model
            .override_link_dynamics(
                NodeId::field(3),
                NodeId::Gateway,
                LinkDynamics::steady(degraded),
            )
            .unwrap();
        let eval = model.evaluate().unwrap();
        let baseline = eval_a(0.83);
        let r = eval.reachabilities();
        let r0 = baseline.reachabilities();
        // Paths 3, 7, 8, 10 (indices 2, 6, 7, 9) cross e3 and get worse.
        for i in [2, 6, 7, 9] {
            assert!(r[i] < r0[i] - 1e-3, "path {i} unaffected");
        }
        // Others unchanged.
        for i in [0, 1, 3, 4, 5, 8] {
            assert!((r[i] - r0[i]).abs() < 1e-12, "path {i} affected");
        }
    }

    #[test]
    fn override_requires_existing_link() {
        let net = typical(0.83);
        let mut model =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap();
        let d = LinkDynamics::steady(LinkModel::from_availability(0.5, 0.9).unwrap());
        assert!(model
            .override_link_dynamics(NodeId::field(1), NodeId::field(2), d)
            .is_err());
    }

    #[test]
    fn path_model_index_bounds() {
        let net = typical(0.83);
        let model =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap();
        assert!(model.path_model(9).is_ok());
        assert!(model.path_model(10).is_err());
    }

    #[test]
    fn schedule_longer_than_uplink_rejected() {
        let net = typical(0.83);
        let long = net.schedule_eta_a().padded(21);
        assert!(matches!(
            NetworkModel::from_typical(&net, long, ReportingInterval::REGULAR),
            Err(ModelError::Inconsistent { .. })
        ));
    }
}
