//! The compiled problem IR and the pluggable solver backends.
//!
//! Every frontend (the CLI's spec files, the engine's scenarios, the
//! experiment harnesses, the sweeps) ultimately evaluates the same thing:
//! a fully-resolved path problem — per-hop [`LinkDynamics`] with their
//! transient/outage state, the frame slots the schedule grants each hop,
//! the super-frame split, the reporting interval `Is` and the TTL. This
//! module makes that object explicit:
//!
//! * [`PathProblem`] / [`NetworkProblem`] — the compiled intermediate
//!   representation. [`crate::PathModel::compile`] and
//!   [`crate::NetworkModel::compile`] lower the builder-level models to
//!   it; [`PathProblem::signature`] derives the canonical cache key
//!   directly from the IR, so *anything* that solves the same compiled
//!   problem shares cache entries.
//! * [`Solver`] — the backend trait. Three implementations ship:
//!   [`FastSolver`] (the in-place transient iteration of Eq. 5),
//!   [`ExplicitSolver`] (Algorithm 1's unrolled absorbing DTMC solved by
//!   absorbing-state analysis) and `whart-sim`'s `MonteCarloSolver`
//!   (statistical solution of the same compiled problem). Because all
//!   three consume the identical [`PathProblem`], scenarios with link
//!   overrides and failure injections can be cross-validated between the
//!   analytical and simulative backends without re-deriving anything.
//! * [`MeasurePlan`] — demand-driven measure extraction. The transient
//!   goal trajectory (Fig. 6's step curves) costs `O(Is^2 * F_up)` memory
//!   per evaluation; scalar-measure sweeps never look at it, so
//!   retention is opt-in.

use crate::dynamics::LinkDynamics;
use crate::error::Result;
use crate::explicit::explicit_chain_of;
use crate::network::{NetworkEvaluation, PathReport};
use crate::path::{
    fast_evaluate_counted, fast_evaluate_observed, PathEvaluation, PathModel, StepEvent,
};
use crate::signature::PathSignature;
use std::sync::Arc;
use whart_channel::{ber_from_failure_probability, Modulation, WIRELESSHART_MESSAGE_BITS};
use whart_dtmc::Pmf;
use whart_net::{NodeId, Path, ReportingInterval, Superframe};
use whart_obs::Metrics;
use whart_trace::{ArgValue, Trace};

/// Which optional artifacts a solve should materialize.
///
/// Scalar measures (reachability, delays, utilization — everything
/// derived from the cycle probability function) are always available.
/// The full per-slot goal trajectory is opt-in: cache entries for
/// scalar-measure fleets then hold `O(Is)` cycle PMFs instead of
/// `O(Is * F_up * Is)` trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeasurePlan {
    /// Materialize the transient goal-state trajectory
    /// ([`PathEvaluation::trajectory`], the paper's Fig. 6 curves).
    pub goal_trajectory: bool,
}

impl MeasurePlan {
    /// Scalar measures only (the default): no trajectory retention.
    pub const SCALAR: MeasurePlan = MeasurePlan {
        goal_trajectory: false,
    };

    /// Scalar measures plus the full goal trajectory.
    pub const WITH_TRAJECTORY: MeasurePlan = MeasurePlan {
        goal_trajectory: true,
    };
}

/// One fully-resolved hop of a compiled path problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemHop {
    dynamics: LinkDynamics,
    frame_slot: usize,
    link: Option<(NodeId, NodeId)>,
}

impl ProblemHop {
    pub(crate) fn new(
        dynamics: LinkDynamics,
        frame_slot: usize,
        link: Option<(NodeId, NodeId)>,
    ) -> ProblemHop {
        ProblemHop {
            dynamics,
            frame_slot,
            link,
        }
    }

    /// The hop's resolved link dynamics (overrides and injections already
    /// applied).
    pub fn dynamics(&self) -> &LinkDynamics {
        &self.dynamics
    }

    /// The 0-based frame slot (within the uplink half) the schedule
    /// grants this hop.
    pub fn frame_slot(&self) -> usize {
        self.frame_slot
    }

    /// The physical link's undirected endpoints, when the problem was
    /// compiled from a network (`None` for bare path models). Not part of
    /// the signature — two paths crossing different physical links with
    /// identical dynamics are the same computation.
    pub fn link(&self) -> Option<(NodeId, NodeId)> {
        self.link
    }
}

/// A compiled path problem: the complete, fully-resolved input of a path
/// solve. Every backend — fast transient iteration, explicit chain,
/// Monte-Carlo — consumes exactly this object, and the engine's cache
/// key ([`PathProblem::signature`]) is derived from it, so equal
/// signatures guarantee bit-identical [`FastSolver`] results.
#[derive(Debug, Clone, PartialEq)]
pub struct PathProblem {
    hops: Vec<ProblemHop>,
    superframe: Superframe,
    interval: ReportingInterval,
    ttl: u32,
}

impl PathProblem {
    /// Invariants (hops non-empty, slots within the uplink half, distinct
    /// and in path order, `0 < ttl <= Is * F_up`) are established by the
    /// [`crate::PathModelBuilder`] validation every compile path goes
    /// through.
    pub(crate) fn new(
        hops: Vec<ProblemHop>,
        superframe: Superframe,
        interval: ReportingInterval,
        ttl: u32,
    ) -> PathProblem {
        debug_assert!(!hops.is_empty());
        PathProblem {
            hops,
            superframe,
            interval,
            ttl,
        }
    }

    /// The hops in path order.
    pub fn hops(&self) -> &[ProblemHop] {
        &self.hops
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The super-frame.
    pub fn superframe(&self) -> Superframe {
        self.superframe
    }

    /// The reporting interval.
    pub fn interval(&self) -> ReportingInterval {
        self.interval
    }

    /// The TTL in uplink slots.
    pub fn ttl(&self) -> u32 {
        self.ttl
    }

    /// The 1-based frame slot of the final hop (the paper's `a0`).
    pub fn arrival_slot_number(&self) -> u32 {
        self.hops
            .iter()
            .map(|h| h.frame_slot)
            .max()
            .expect("problems have >= 1 hop") as u32
            + 1
    }

    /// Reconstructs a builder-level [`PathModel`] from the IR. The round
    /// trip preserves the evaluation-relevant content bit-exactly:
    /// `problem.to_model().signature() == problem.signature()`.
    pub fn to_model(&self) -> PathModel {
        PathModel::from_problem(self)
    }

    /// Whether shifting every frame slot by a common offset preserves
    /// the evaluation bit-for-bit (for backends that opt in via
    /// [`Solver::solves_shifted_slots_exactly`]): every hop's success
    /// probability must be slot-constant to the last bit
    /// ([`LinkDynamics::is_exactly_stationary`]) and the TTL must span
    /// the whole interval (`Is * F_up`), so no transmission can move
    /// across the expiry boundary when the slots shift.
    pub fn is_slot_shift_exact(&self) -> bool {
        self.ttl as u64
            == u64::from(self.superframe.uplink_slots()) * u64::from(self.interval.cycles())
            && self.hops.iter().all(|h| h.dynamics.is_exactly_stationary())
    }

    /// The slot-shift canonical form: the same problem with every frame
    /// slot translated down so the first hop transmits at slot 0. Two
    /// schedules that differ only by a common slot offset normalize to
    /// the same problem (and signature), letting a cache solve the
    /// class once and rebase each member's arrival slot afterwards
    /// ([`crate::path::PathEvaluation::rebased_at_slot`]).
    ///
    /// Returns `None` when the problem is not shift-exact
    /// ([`PathProblem::is_slot_shift_exact`]) or is already canonical
    /// (first slot 0), so callers fall back to the problem itself.
    pub fn shift_normalized(&self) -> Option<PathProblem> {
        let first = self.hops.first().map(|h| h.frame_slot).unwrap_or(0);
        if first == 0 || !self.is_slot_shift_exact() {
            return None;
        }
        Some(PathProblem {
            hops: self
                .hops
                .iter()
                .map(|h| ProblemHop::new(h.dynamics.clone(), h.frame_slot - first, h.link))
                .collect(),
            superframe: self.superframe,
            interval: self.interval,
            ttl: self.ttl,
        })
    }

    /// Assembles a [`PathEvaluation`] from externally computed measures —
    /// the constructor solver backends use. `cycle_probabilities` is the
    /// cycle function `g`, `discard_probability` the loss mass and
    /// `expected_transmissions` the (estimated) attempt count; the
    /// structural fields (`a0`, hop count, super-frame, interval) come
    /// from the problem itself. No trajectory is attached.
    pub fn evaluation_from_measures(
        &self,
        cycle_probabilities: Pmf,
        discard_probability: f64,
        expected_transmissions: f64,
    ) -> PathEvaluation {
        PathEvaluation::from_measures(
            cycle_probabilities,
            discard_probability,
            expected_transmissions,
            self.arrival_slot_number(),
            self.hop_count(),
            self.superframe,
            self.interval,
        )
    }

    /// Like [`PathProblem::evaluation_from_measures`], but estimates the
    /// attempt count from the cycle function alone with the
    /// [`crate::UtilizationConvention::LostCharged`] accounting (the only
    /// convention derivable without per-slot information).
    pub fn evaluation_from_cycles(
        &self,
        cycle_probabilities: Pmf,
        discard_probability: f64,
    ) -> PathEvaluation {
        let expected = crate::path::lost_charged_transmissions(
            &cycle_probabilities,
            discard_probability,
            self.hop_count(),
            self.interval,
        );
        self.evaluation_from_measures(cycle_probabilities, discard_probability, expected)
    }
}

/// A compiled network problem: one [`PathProblem`] per route, with the
/// routes themselves kept for report assembly.
#[derive(Debug, Clone)]
pub struct NetworkProblem {
    paths: Vec<Path>,
    problems: Vec<PathProblem>,
}

impl NetworkProblem {
    pub(crate) fn new(paths: Vec<Path>, problems: Vec<PathProblem>) -> NetworkProblem {
        debug_assert_eq!(paths.len(), problems.len());
        NetworkProblem { paths, problems }
    }

    /// The routes, in path order.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The compiled per-path problems, in path order.
    pub fn path_problems(&self) -> &[PathProblem] {
        &self.problems
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the network has no paths.
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Decomposes into `(paths, problems)` — the shape batch planners
    /// want.
    pub fn into_parts(self) -> (Vec<Path>, Vec<PathProblem>) {
        (self.paths, self.problems)
    }
}

/// A solver backend: anything that can turn a compiled [`PathProblem`]
/// into a [`PathEvaluation`].
///
/// The analytical backends ([`FastSolver`], [`ExplicitSolver`]) agree to
/// solver round-off (`< 1e-12`); the Monte-Carlo backend
/// (`whart_sim::MonteCarloSolver`) converges statistically. All three
/// consume the identical compiled problem, so link overrides and failure
/// injections are cross-validated structurally rather than by hand-wired
/// re-derivation.
pub trait Solver: Send + Sync {
    /// A short stable name for logs, CLI output and metric names.
    fn name(&self) -> &'static str;

    /// Whether this backend's path results are *bit-identical* under
    /// slot-shift normalization of shift-exact problems
    /// ([`PathProblem::shift_normalized`]), so a cache may serve the
    /// canonical problem's evaluation — rebased to the original arrival
    /// slot — in place of a fresh solve.
    ///
    /// Defaults to `false`: opting in asserts a floating-point-level
    /// property of the backend, not merely analytical equivalence. The
    /// fast transient evaluator qualifies (its arithmetic sequence
    /// depends on slots only through their relative offsets when every
    /// success probability is slot-constant); the explicit chain's
    /// state ordering and the Monte-Carlo RNG stream do not.
    fn solves_shifted_slots_exactly(&self) -> bool {
        false
    }

    /// Solves one compiled path problem, recording backend
    /// observability into `obs`: every backend times the solve into the
    /// `solver.<name>.solve_ns` histogram, plus backend-specific work
    /// counters (transient steps, chain sizes, Monte-Carlo draws). With
    /// a disabled handle this must behave exactly like an
    /// uninstrumented solve — bit-identical results, no clock reads.
    ///
    /// # Errors
    ///
    /// Backend-specific solver failures (the fast evaluator is total;
    /// the explicit chain propagates linear-solver errors).
    fn solve_path_observed(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<PathEvaluation>;

    /// Solves one compiled path problem without observability.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve_path_observed`].
    fn solve_path(&self, problem: &PathProblem, plan: MeasurePlan) -> Result<PathEvaluation> {
        self.solve_path_observed(problem, plan, &Metrics::disabled())
    }

    /// Solves one compiled path problem, recording metrics into `obs`
    /// and structured provenance into `trace`: a `path_solve` span per
    /// solve plus backend-specific events (per-hop link provenance,
    /// per-cycle transition mass, chain sizes, Monte-Carlo seeds).
    ///
    /// The contract mirrors the metrics one: with a disabled trace
    /// handle this must behave exactly like
    /// [`Solver::solve_path_observed`] — bit-identical results, no
    /// extra clock reads or allocation. The default implementation
    /// ignores the trace entirely, so backends without provenance stay
    /// correct.
    ///
    /// # Errors
    ///
    /// As [`Solver::solve_path_observed`].
    fn solve_path_traced(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<PathEvaluation> {
        let _ = trace;
        self.solve_path_observed(problem, plan, obs)
    }

    /// Solves a compiled network problem path by path, recording
    /// backend observability into `obs`.
    ///
    /// # Errors
    ///
    /// Propagates the first path-solve failure.
    fn solve_network_observed(
        &self,
        problem: &NetworkProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<NetworkEvaluation> {
        let reports = problem
            .paths()
            .iter()
            .zip(problem.path_problems())
            .map(|(path, p)| {
                Ok(PathReport {
                    path: path.clone(),
                    evaluation: Arc::new(self.solve_path_observed(p, plan, obs)?),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(NetworkEvaluation::from_reports(reports))
    }

    /// Solves a compiled network problem without observability.
    ///
    /// # Errors
    ///
    /// Propagates the first path-solve failure.
    fn solve_network(
        &self,
        problem: &NetworkProblem,
        plan: MeasurePlan,
    ) -> Result<NetworkEvaluation> {
        self.solve_network_observed(problem, plan, &Metrics::disabled())
    }

    /// Solves a compiled network problem path by path with metrics and
    /// provenance tracing; see [`Solver::solve_path_traced`].
    ///
    /// # Errors
    ///
    /// Propagates the first path-solve failure.
    fn solve_network_traced(
        &self,
        problem: &NetworkProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<NetworkEvaluation> {
        if !trace.is_enabled() {
            return self.solve_network_observed(problem, plan, obs);
        }
        let reports = problem
            .paths()
            .iter()
            .zip(problem.path_problems())
            .map(|(path, p)| {
                Ok(PathReport {
                    path: path.clone(),
                    evaluation: Arc::new(self.solve_path_traced(p, plan, obs, trace)?),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(NetworkEvaluation::from_reports(reports))
    }
}

/// The per-hop link provenance every traced backend emits: scheduling,
/// the resolved transition probabilities, and the channel figures they
/// imply (stationary availability, the Eq. 2-inverted BER at the
/// standard 127-byte message and — when the BER is invertible through
/// the OQPSK AWGN curve — the implied `Eb/N0`).
pub fn hop_provenance(hop: usize, h: &ProblemHop) -> Vec<(&'static str, ArgValue)> {
    let model = h.dynamics().model();
    let ber = if model.p_fl() < 1.0 {
        ber_from_failure_probability(model.p_fl(), WIRELESSHART_MESSAGE_BITS)
    } else {
        1.0
    };
    let mut args = vec![
        ("hop", ArgValue::from(hop)),
        ("frame_slot", ArgValue::from(h.frame_slot())),
        ("p_fl", ArgValue::from(model.p_fl())),
        ("p_rc", ArgValue::from(model.p_rc())),
        ("availability", ArgValue::from(model.availability())),
        ("ber", ArgValue::from(ber)),
        ("initial_up", ArgValue::from(h.dynamics().initial().up())),
        ("outages", ArgValue::from(h.dynamics().outages().len())),
    ];
    if let Some(snr) = Modulation::Oqpsk.required_snr(ber) {
        args.push(("snr", ArgValue::from(snr.linear())));
    }
    if let Some((a, b)) = h.link() {
        // The attached identity is the undirected canonical key, so the
        // rendering must not imply a transmission direction.
        args.push(("link", ArgValue::from(format!("{a}--{b}"))));
    }
    args
}

/// Emits one `hop` provenance instant per hop of `problem` (the static
/// part — backends with per-hop solve statistics extend the args
/// instead of calling this).
pub fn trace_hops(problem: &PathProblem, cat: &'static str, trace: &Trace) {
    for (hop, h) in problem.hops().iter().enumerate() {
        trace.instant("hop", cat, hop_provenance(hop, h));
    }
}

/// The production backend: the in-place transient iteration of Eq. 5
/// (`O(Is * F_up)` time, `O(n)` working state). Total — never fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastSolver;

impl Solver for FastSolver {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn solves_shifted_slots_exactly(&self) -> bool {
        true
    }

    fn solve_path_observed(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<PathEvaluation> {
        let span = obs.timer("solver.fast.solve_ns");
        let (evaluation, steps) = fast_evaluate_counted(problem, plan);
        span.stop();
        obs.counter("solver.fast.transient_steps").add(steps);
        Ok(evaluation)
    }

    fn solve_network_observed(
        &self,
        problem: &NetworkProblem,
        plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<NetworkEvaluation> {
        let evaluations = evaluate_parallel(problem.path_problems(), plan, obs);
        let reports = problem
            .paths()
            .iter()
            .cloned()
            .zip(evaluations)
            .map(|(path, evaluation)| PathReport {
                path,
                evaluation: Arc::new(evaluation),
            })
            .collect();
        Ok(NetworkEvaluation::from_reports(reports))
    }

    /// The traced fast solve: the identical transient iteration, with a
    /// step observer feeding the journal. Per solve it emits one
    /// `path_solve` span, one `hop` instant per hop (link provenance
    /// plus the hop's expected attempts/failures and discard-attributed
    /// loss mass), one `cycle` instant per completed cycle (transition
    /// mass into the goal state and the in-flight residual) and one
    /// `discard` instant at the TTL expiry.
    fn solve_path_traced(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<PathEvaluation> {
        if !trace.is_enabled() {
            return self.solve_path_observed(problem, plan, obs);
        }
        let mut span = trace.span("path_solve", "solver.fast");
        let n = problem.hop_count();
        let mut attempts = vec![0.0f64; n];
        let mut failures = vec![0.0f64; n];
        let mut loss = vec![0.0f64; n];
        let timer = obs.timer("solver.fast.solve_ns");
        let (evaluation, steps) = fast_evaluate_observed(problem, plan, |event| match event {
            StepEvent::Transmission {
                hop, mass, moved, ..
            } => {
                attempts[hop] += mass;
                failures[hop] += mass - moved;
            }
            StepEvent::CycleEnd {
                cycle,
                goal_mass,
                delivered,
                in_flight,
            } => {
                trace.instant(
                    "cycle",
                    "solver.fast",
                    [
                        ("cycle", ArgValue::from(cycle as u64 + 1)),
                        ("goal_mass", ArgValue::from(goal_mass)),
                        ("delivered", ArgValue::from(delivered)),
                        ("residual", ArgValue::from(in_flight)),
                    ],
                );
            }
            StepEvent::Discard { step, in_flight } => {
                loss.copy_from_slice(in_flight);
                trace.instant(
                    "discard",
                    "solver.fast",
                    [
                        ("step", ArgValue::from(step)),
                        ("mass", ArgValue::from(in_flight.iter().sum::<f64>())),
                    ],
                );
            }
        });
        timer.stop();
        obs.counter("solver.fast.transient_steps").add(steps);
        for (hop, h) in problem.hops().iter().enumerate() {
            let mut args = hop_provenance(hop, h);
            args.push(("expected_attempts", ArgValue::from(attempts[hop])));
            args.push(("expected_failures", ArgValue::from(failures[hop])));
            args.push(("loss_mass", ArgValue::from(loss[hop])));
            trace.instant("hop", "solver.fast", args);
        }
        span.arg("hops", n);
        span.arg("transient_steps", steps);
        span.arg("reachability", evaluation.reachability());
        Ok(evaluation)
    }
}

/// Solves a batch of compiled path problems on scoped worker threads
/// (one chunk per available core, bounded by the batch size). Each
/// solve is timed into `solver.fast.solve_ns`; instrument handles are
/// resolved once, so the per-solve cost is two atomic updates (none
/// when `obs` is disabled).
pub(crate) fn evaluate_parallel(
    problems: &[PathProblem],
    plan: MeasurePlan,
    obs: &Metrics,
) -> Vec<PathEvaluation> {
    let latency = obs.histogram("solver.fast.solve_ns");
    let steps_total = obs.counter("solver.fast.transient_steps");
    let solve = |problem: &PathProblem| {
        let span = latency.start();
        let (evaluation, steps) = fast_evaluate_counted(problem, plan);
        span.stop();
        steps_total.add(steps);
        evaluation
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(problems.len()).max(1);
    if workers <= 1 {
        return problems.iter().map(solve).collect();
    }
    let chunk = problems.len().div_ceil(workers);
    let mut out: Vec<Option<PathEvaluation>> = vec![None; problems.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (problems_chunk, out_chunk) in problems.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let solve = &solve;
            handles.push(scope.spawn(move || {
                for (problem, slot) in problems_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(solve(problem));
                }
            }));
        }
        for h in handles {
            h.join().expect("path evaluation workers do not panic");
        }
    });
    out.into_iter()
        .map(|e| e.expect("every slot filled"))
        .collect()
}

/// The reference backend: Algorithm 1's explicit unrolled DTMC (Figs.
/// 4-5), solved by absorbing-state analysis. Slower than [`FastSolver`]
/// but independent of the transient iteration, so it serves as the exact
/// cross-check. Does not materialize trajectories (the absorbing-state
/// solve yields end-of-horizon probabilities only); a
/// [`MeasurePlan::WITH_TRAJECTORY`] request is ignored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplicitSolver;

impl Solver for ExplicitSolver {
    fn name(&self) -> &'static str {
        "explicit"
    }

    fn solve_path_observed(
        &self,
        problem: &PathProblem,
        _plan: MeasurePlan,
        obs: &Metrics,
    ) -> Result<PathEvaluation> {
        let span = obs.timer("solver.explicit.solve_ns");
        let chain = explicit_chain_of(problem);
        obs.counter("solver.explicit.states")
            .add(chain.state_count() as u64);
        obs.counter("solver.explicit.transitions")
            .add(chain.transition_count() as u64);
        let (cycle_probabilities, discard) = chain.solve()?;
        let evaluation = problem.evaluation_from_cycles(cycle_probabilities, discard);
        span.stop();
        Ok(evaluation)
    }

    /// The traced explicit solve: identical numerics, plus a `path_solve`
    /// span carrying the enumerated chain's state/transition counts and
    /// one `hop` provenance instant per hop.
    fn solve_path_traced(
        &self,
        problem: &PathProblem,
        plan: MeasurePlan,
        obs: &Metrics,
        trace: &Trace,
    ) -> Result<PathEvaluation> {
        if !trace.is_enabled() {
            return self.solve_path_observed(problem, plan, obs);
        }
        let mut tspan = trace.span("path_solve", "solver.explicit");
        let span = obs.timer("solver.explicit.solve_ns");
        let chain = explicit_chain_of(problem);
        obs.counter("solver.explicit.states")
            .add(chain.state_count() as u64);
        obs.counter("solver.explicit.transitions")
            .add(chain.transition_count() as u64);
        tspan.arg("states", chain.state_count());
        tspan.arg("transitions", chain.transition_count());
        let (cycle_probabilities, discard) = chain.solve()?;
        let evaluation = problem.evaluation_from_cycles(cycle_probabilities, discard);
        span.stop();
        trace_hops(problem, "solver.explicit", trace);
        tspan.arg("hops", problem.hop_count());
        tspan.arg("reachability", evaluation.reachability());
        Ok(evaluation)
    }
}

/// Derives the canonical cache signature of this compiled problem.
///
/// The signature is total over the evaluation-relevant inputs (per-hop
/// dynamics and slots, super-frame, interval, TTL) and deliberately
/// excludes physical-link identity and measure conventions.
impl PathProblem {
    /// See [`PathSignature`].
    pub fn signature(&self) -> PathSignature {
        PathSignature::of_problem(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Outage;
    use crate::sweeps::{chain_model, section_v_model};
    use whart_channel::{LinkModel, LinkState};
    use whart_net::ReportingInterval;

    fn example() -> PathModel {
        section_v_model(0.75, ReportingInterval::REGULAR).unwrap()
    }

    #[test]
    fn compile_round_trips_through_the_ir() {
        let model = example();
        let problem = model.compile();
        assert_eq!(problem.hop_count(), 3);
        assert_eq!(problem.arrival_slot_number(), 7);
        assert_eq!(problem.signature(), model.signature());
        let back = problem.to_model();
        assert_eq!(back.signature(), model.signature());
        assert_eq!(back.evaluate(), model.evaluate());
    }

    #[test]
    fn fast_solver_matches_model_evaluate() {
        let model = example();
        let via_solver = FastSolver
            .solve_path(&model.compile(), MeasurePlan::SCALAR)
            .unwrap();
        assert_eq!(via_solver, model.evaluate());
    }

    #[test]
    fn explicit_solver_agrees_with_fast_solver() {
        for &pi in &[0.693, 0.83, 0.948] {
            let model = chain_model(2, pi, ReportingInterval::REGULAR).unwrap();
            let problem = model.compile();
            let fast = FastSolver
                .solve_path(&problem, MeasurePlan::SCALAR)
                .unwrap();
            let explicit = ExplicitSolver
                .solve_path(&problem, MeasurePlan::SCALAR)
                .unwrap();
            for i in 0..4 {
                assert!(
                    (fast.cycle_probabilities().get(i) - explicit.cycle_probabilities().get(i))
                        .abs()
                        < 1e-12
                );
            }
            assert!((fast.discard_probability() - explicit.discard_probability()).abs() < 1e-12);
            assert!((fast.reachability() - explicit.reachability()).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_solver_handles_outages_and_initial_states() {
        // The injection cases the solvers must agree on: a link starting
        // DOWN with a mid-interval outage window.
        let link = LinkModel::from_availability(0.83, 0.9).unwrap();
        let mut b = PathModel::builder();
        b.add_hop(
            LinkDynamics::starting_in(link, LinkState::Down).with_outage(Outage::new(10, 20)),
            2,
        )
        .add_hop(LinkDynamics::steady(link), 5);
        b.superframe(whart_net::Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::REGULAR);
        let problem = b.build().unwrap().compile();
        let fast = FastSolver
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        let explicit = ExplicitSolver
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        for i in 0..4 {
            assert!(
                (fast.cycle_probabilities().get(i) - explicit.cycle_probabilities().get(i)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn measure_plan_gates_the_trajectory() {
        let problem = example().compile();
        let scalar = FastSolver
            .solve_path(&problem, MeasurePlan::SCALAR)
            .unwrap();
        assert!(!scalar.has_trajectory());
        assert!(scalar.trajectory().is_empty());
        let full = FastSolver
            .solve_path(&problem, MeasurePlan::WITH_TRAJECTORY)
            .unwrap();
        assert!(full.has_trajectory());
        assert_eq!(full.trajectory().len(), 29);
        // Scalar content is identical either way.
        assert_eq!(scalar.cycle_probabilities(), full.cycle_probabilities());
        assert_eq!(scalar.discard_probability(), full.discard_probability());
        assert_eq!(
            scalar.expected_transmissions(),
            full.expected_transmissions()
        );
    }

    #[test]
    fn network_problems_compile_with_link_identity() {
        use whart_net::typical::TypicalNetwork;
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let model = crate::NetworkModel::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
        )
        .unwrap();
        let problem = model.compile().unwrap();
        assert_eq!(problem.len(), 10);
        assert!(!problem.is_empty());
        for (path, p) in problem.paths().iter().zip(problem.path_problems()) {
            assert_eq!(path.hop_count(), p.hop_count());
            for hop in p.hops() {
                assert!(hop.link().is_some(), "network hops carry link identity");
            }
        }
        // Bare path models carry no link identity.
        let bare = example().compile();
        assert!(bare.hops().iter().all(|h| h.link().is_none()));
    }

    #[test]
    fn solver_names_are_stable() {
        assert_eq!(FastSolver.name(), "fast");
        assert_eq!(ExplicitSolver.name(), "explicit");
    }

    #[test]
    fn default_solve_network_matches_fast_override() {
        use whart_net::typical::TypicalNetwork;
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let model = crate::NetworkModel::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
        )
        .unwrap();
        let problem = model.compile().unwrap();
        let fast = FastSolver
            .solve_network(&problem, MeasurePlan::SCALAR)
            .unwrap();
        // The default per-path implementation through ExplicitSolver
        // agrees to solver round-off.
        let explicit = ExplicitSolver
            .solve_network(&problem, MeasurePlan::SCALAR)
            .unwrap();
        for (a, b) in fast.reports().iter().zip(explicit.reports()) {
            assert!((a.evaluation.reachability() - b.evaluation.reachability()).abs() < 1e-12);
        }
    }
}
