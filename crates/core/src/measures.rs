//! Quality-of-service measures (Section V).
//!
//! All measures derive from a [`PathEvaluation`]'s cycle probability
//! function: reachability (Eq. 6), the expected number of reporting
//! intervals until the first loss, the delay distribution (Eqs. 7-9) and
//! the slot utilization (Eq. 10).

use crate::path::PathEvaluation;
use whart_dtmc::ValueDistribution;
use whart_net::SLOT_MS;

/// How message ages are converted to wall-clock delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelayConvention {
    /// Absolute elapsed time: a message absorbed in cycle `i` at frame slot
    /// `a0` has lived `(i-1)` full super-frames plus `a0` uplink slots, so
    /// `d_i = ((i-1) * (F_up + T_down) + a0) * 10 ms`.
    ///
    /// This is the convention that reproduces every delay in the paper's
    /// evaluation (Fig. 7's 70/210/350/490 ms, Table I, Figs. 14-16 — see
    /// DESIGN.md).
    #[default]
    Absolute,
    /// Eq. 7 exactly as printed: `d_i = (a_i + T_down) * 10 ms` with the age
    /// `a_i = (i-1) * F_up + a0` counted in uplink slots and a single
    /// downlink half added. Kept for comparison; it does not match the
    /// paper's own reported delays.
    Eq7AsPrinted,
}

/// How slot utilization is counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UtilizationConvention {
    /// The counting that reproduces Table II: a message absorbed in cycle
    /// `i` used `n + i - 1` slots (its `n` hops plus one retransmission per
    /// extra cycle) and discarded messages are not counted.
    #[default]
    AsEvaluated,
    /// Like [`UtilizationConvention::AsEvaluated`] but discarded messages
    /// are charged their worst case of `n + Is - 1` slots. This reproduces
    /// the Section V-A example's `U_p = 0.14` (the two sections of the
    /// paper evidently counted losses differently).
    LostCharged,
    /// Eq. 10 exactly as printed: `n + i` slots per absorbed message plus
    /// `(1 - R) * (n + Is)` for discarded ones. Kept for comparison; it
    /// over-counts relative to Table II.
    Eq10AsPrinted,
}

impl PathEvaluation {
    /// Reachability `R` (Eq. 6): the probability that the message reaches
    /// the destination before the reporting interval ends.
    pub fn reachability(&self) -> f64 {
        self.cycle_probabilities().total_mass()
    }

    /// The expected number of reporting intervals until the first message
    /// loss, `E[N] = 1 / (1 - R)` — the time to first loss is geometric.
    /// Infinite for `R = 1`.
    pub fn expected_intervals_to_first_loss(&self) -> f64 {
        1.0 / (1.0 - self.reachability())
    }

    /// The delay of an arrival in 1-based cycle `cycle` under a convention.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is zero or beyond the reporting interval.
    pub fn delay_ms(&self, cycle: u32, convention: DelayConvention) -> f64 {
        assert!(
            (1..=self.interval().cycles()).contains(&cycle),
            "cycle {cycle} outside the reporting interval"
        );
        let a0 = self.arrival_slot_number();
        match convention {
            DelayConvention::Absolute => f64::from(self.superframe().delay_ms(cycle, a0)),
            DelayConvention::Eq7AsPrinted => {
                let age = (cycle - 1) * self.superframe().uplink_slots() + a0;
                f64::from((age + self.superframe().downlink_slots()) * SLOT_MS)
            }
        }
    }

    /// The delay distribution `tau` (Eq. 8): the probability of each
    /// possible delay among *received* messages (normalized by `R`).
    ///
    /// Returns an empty distribution if the path is unreachable (`R = 0`).
    pub fn delay_distribution(&self, convention: DelayConvention) -> ValueDistribution {
        let r = self.reachability();
        if r <= 0.0 {
            return ValueDistribution::default();
        }
        let pairs: Vec<(f64, f64)> = (1..=self.interval().cycles())
            .map(|cycle| {
                let p = self.cycle_probabilities().get(cycle as usize - 1) / r;
                (self.delay_ms(cycle, convention), p)
            })
            .collect();
        ValueDistribution::new(pairs).expect("probabilities and delays are finite")
    }

    /// The expected delay `E[tau]` (Eq. 9) in milliseconds, conditioned on
    /// delivery. `None` if the path is unreachable.
    pub fn expected_delay_ms(&self, convention: DelayConvention) -> Option<f64> {
        let d = self.delay_distribution(convention);
        (!d.is_empty()).then(|| d.expectation())
    }

    /// The `q`-quantile of the delivery delay in milliseconds (e.g. 0.95
    /// for a real-time deadline check), conditioned on delivery. `None` if
    /// the path is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn delay_quantile_ms(&self, q: f64, convention: DelayConvention) -> Option<f64> {
        self.delay_distribution(convention).quantile(q)
    }

    /// The delay jitter (standard deviation of the delivery delay) in
    /// milliseconds, conditioned on delivery. `None` if unreachable.
    pub fn delay_jitter_ms(&self, convention: DelayConvention) -> Option<f64> {
        self.delay_distribution(convention)
            .conditional_variance()
            .map(f64::sqrt)
    }

    /// Probability that a delivered message meets a deadline (ms) under a
    /// convention — `P(delay <= deadline | delivered)`.
    pub fn deadline_probability(&self, deadline_ms: f64, convention: DelayConvention) -> f64 {
        self.delay_distribution(convention).cdf(deadline_ms)
    }

    /// The path utilization `U_p` (Eq. 10): the fraction of the interval's
    /// uplink slots spent transmitting this path's message.
    pub fn utilization(&self, convention: UtilizationConvention) -> f64 {
        let n = self.hop_count() as f64;
        let is = self.interval().cycles();
        let denominator = f64::from(is * self.superframe().uplink_slots());
        let absorbed: f64 = (1..=is)
            .map(|cycle| {
                let p = self.cycle_probabilities().get(cycle as usize - 1);
                let slots = match convention {
                    UtilizationConvention::AsEvaluated | UtilizationConvention::LostCharged => {
                        n + f64::from(cycle) - 1.0
                    }
                    UtilizationConvention::Eq10AsPrinted => n + f64::from(cycle),
                };
                p * slots
            })
            .sum();
        let lost = match convention {
            UtilizationConvention::AsEvaluated => 0.0,
            UtilizationConvention::LostCharged => {
                self.discard_probability() * (n + f64::from(is) - 1.0)
            }
            UtilizationConvention::Eq10AsPrinted => {
                self.discard_probability() * (n + f64::from(is))
            }
        };
        (absorbed + lost) / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LinkDynamics;
    use crate::path::PathModel;
    use whart_channel::LinkModel;
    use whart_net::{ReportingInterval, Superframe};

    fn example_eval_link(link: LinkModel) -> PathEvaluation {
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(link), 2)
            .add_hop(LinkDynamics::steady(link), 5)
            .add_hop(LinkDynamics::steady(link), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        b.build().unwrap().evaluate()
    }

    fn example_eval(pi: f64) -> PathEvaluation {
        example_eval_link(LinkModel::from_availability(pi, 0.9).unwrap())
    }

    /// The paper's operating points are BER-derived; the availabilities it
    /// quotes (0.774, 0.83, ...) are rounded from these.
    fn example_eval_ber(ber: f64) -> PathEvaluation {
        example_eval_link(LinkModel::from_ber(ber, 1016, 0.9).unwrap())
    }

    #[test]
    fn reachability_matches_section_v() {
        let eval = example_eval(0.75);
        assert!((eval.reachability() - 0.9624).abs() < 1e-4);
        // E[N] = 1 / (1 - R) ~ 26.6 reporting intervals.
        let n = eval.expected_intervals_to_first_loss();
        assert!((n - 1.0 / 0.0376).abs() < 0.15, "{n}");
    }

    #[test]
    fn delay_values_match_fig7() {
        let eval = example_eval(0.75);
        assert_eq!(eval.delay_ms(1, DelayConvention::Absolute), 70.0);
        assert_eq!(eval.delay_ms(2, DelayConvention::Absolute), 210.0);
        assert_eq!(eval.delay_ms(3, DelayConvention::Absolute), 350.0);
        assert_eq!(eval.delay_ms(4, DelayConvention::Absolute), 490.0);
    }

    #[test]
    fn expected_delay_matches_section_v() {
        // E[tau] = 190.8 ms for the example path.
        let e = example_eval(0.75)
            .expected_delay_ms(DelayConvention::Absolute)
            .unwrap();
        assert!((e - 190.8).abs() < 0.05, "{e}");
    }

    #[test]
    fn table1_expected_delays() {
        // Table I: BER (availability) -> (R %, E[tau] ms). The paper's
        // 113 ms entry at pi = 0.903 is inconsistent with its own model —
        // the convention that reproduces the other three rows (and Fig. 7's
        // 190.8 ms) yields 114.5 ms there; we pin the model's value and
        // record the discrepancy in EXPERIMENTS.md.
        let cases = [
            (3e-4, 97.37, 179.2),
            (2e-4, 99.07, 151.0),
            (1e-4, 99.89, 114.5),
            (5e-5, 99.99, 93.1),
        ];
        for (ber, want_r, want_delay) in cases {
            let eval = example_eval_ber(ber);
            assert!(
                (eval.reachability() * 100.0 - want_r).abs() < 0.011,
                "ber={ber}"
            );
            let e = eval.expected_delay_ms(DelayConvention::Absolute).unwrap();
            assert!(
                (e - want_delay).abs() < 0.25,
                "ber={ber}: {e} vs {want_delay}"
            );
        }
    }

    #[test]
    fn fig9_marked_points() {
        // Fig. 9's annotated data points (BER 3e-4 -> pi = 0.774 and
        // BER 5e-5 -> pi = 0.948).
        let eval = example_eval_ber(3e-4);
        let d = eval.delay_distribution(DelayConvention::Absolute);
        assert!((d.cdf(210.0) - d.cdf(70.0) - 0.3228).abs() < 5e-4); // P(210ms)
        assert!((d.cdf(350.0) - d.cdf(210.0) - 0.1459).abs() < 5e-4); // P(350ms)
        let eval = example_eval_ber(5e-5);
        let d = eval.delay_distribution(DelayConvention::Absolute);
        assert!((d.cdf(210.0) - d.cdf(70.0) - 0.1332).abs() < 5e-4);
        // "98.5% of messages have a delay shorter/equal than the 2nd cycle".
        assert!((d.cdf(210.0) - 0.985).abs() < 5e-4);
    }

    #[test]
    fn delay_distribution_is_normalized() {
        let d = example_eval(0.83).delay_distribution(DelayConvention::Absolute);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn eq7_as_printed_differs() {
        let eval = example_eval(0.75);
        // Eq. 7 as printed: age 7 + T_down 7 = 14 slots -> 140 ms.
        assert_eq!(eval.delay_ms(1, DelayConvention::Eq7AsPrinted), 140.0);
        assert!(
            eval.expected_delay_ms(DelayConvention::Eq7AsPrinted)
                .unwrap()
                != eval.expected_delay_ms(DelayConvention::Absolute).unwrap()
        );
    }

    #[test]
    fn section_v_utilization() {
        // Section V-A: "the computed utilization rate of this path
        // U_p = 0.14" (3 hops in a 7-slot schedule, Is = 4) — the paper
        // charges lost messages here, unlike in Table II.
        let u = example_eval(0.75).utilization(UtilizationConvention::LostCharged);
        assert!((u - 0.14).abs() < 0.002, "{u}");
    }

    #[test]
    fn utilization_conventions_are_ordered() {
        let eval = example_eval(0.75);
        let a = eval.utilization(UtilizationConvention::AsEvaluated);
        let l = eval.utilization(UtilizationConvention::LostCharged);
        let b = eval.utilization(UtilizationConvention::Eq10AsPrinted);
        assert!(a < l && l < b);
    }

    #[test]
    #[should_panic(expected = "outside the reporting interval")]
    fn delay_rejects_cycle_beyond_interval() {
        let _ = example_eval(0.75).delay_ms(5, DelayConvention::Absolute);
    }

    #[test]
    fn delay_quantiles_walk_cycles() {
        let eval = example_eval(0.75);
        // Normalized first-cycle mass is 0.4219/0.9624 ~ 0.438.
        assert_eq!(
            eval.delay_quantile_ms(0.25, DelayConvention::Absolute),
            Some(70.0)
        );
        assert_eq!(
            eval.delay_quantile_ms(0.5, DelayConvention::Absolute),
            Some(210.0)
        );
        assert_eq!(
            eval.delay_quantile_ms(0.99, DelayConvention::Absolute),
            Some(490.0)
        );
    }

    #[test]
    fn jitter_shrinks_with_better_links() {
        let good = example_eval(0.948)
            .delay_jitter_ms(DelayConvention::Absolute)
            .unwrap();
        let bad = example_eval(0.774)
            .delay_jitter_ms(DelayConvention::Absolute)
            .unwrap();
        assert!(good < bad, "{good} vs {bad}");
        assert!(good > 0.0);
    }

    #[test]
    fn deadline_probability_matches_cdf() {
        let eval = example_eval(0.75);
        let p = eval.deadline_probability(200.0, DelayConvention::Absolute);
        // Only the 70 ms arrival meets a 200 ms deadline.
        assert!((p - 0.4219 / 0.9624).abs() < 1e-3, "{p}");
        assert_eq!(
            eval.deadline_probability(500.0, DelayConvention::Absolute),
            1.0
        );
        assert_eq!(
            eval.deadline_probability(10.0, DelayConvention::Absolute),
            0.0
        );
    }
}
