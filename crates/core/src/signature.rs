//! Canonical cache keys for link dynamics and path models.
//!
//! The batch engine (`whart-engine`) memoizes sub-computations across
//! scenario fleets. Two scenarios share work exactly when the inputs of
//! the underlying computation are bit-identical, so the keys here encode
//! every input of [`PathModel::evaluate`] with bit-exact `f64` encoding
//! (`f64::to_bits`, with `-0.0` normalized to `0.0`): two models with
//! equal signatures produce bit-identical evaluations, and models that
//! differ in any evaluation-relevant input get different signatures.
//!
//! Measure conventions ([`crate::measures::DelayConvention`],
//! [`crate::measures::UtilizationConvention`]) are deliberately *not*
//! part of the signature: they parameterize the cheap measure extraction
//! applied downstream of the cached [`crate::path::PathEvaluation`], not
//! the DTMC solve itself.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::dynamics::LinkDynamics;
use crate::ir::PathProblem;
use crate::path::PathModel;

/// Bit-exact encoding of an `f64` probability for use in a hash key.
/// `-0.0` maps to the bits of `0.0` so the two zero encodings compare
/// equal, as they do arithmetically.
fn canonical_bits(value: f64) -> u64 {
    if value == 0.0 {
        0.0f64.to_bits()
    } else {
        value.to_bits()
    }
}

/// Canonical key of one [`LinkDynamics`]: the Gilbert-model transition
/// probabilities (Eqs. 4-5), the initial state distribution and any
/// scheduled outage windows. Two dynamics with equal keys yield the same
/// `pi(up)(k)` trajectory for every slot `k`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynamicsKey {
    p_fl_bits: u64,
    p_rc_bits: u64,
    initial_up_bits: u64,
    outages: Vec<(u64, u64)>,
}

impl DynamicsKey {
    /// Derives the canonical key of `dynamics`.
    pub fn of(dynamics: &LinkDynamics) -> DynamicsKey {
        let model = dynamics.model();
        DynamicsKey {
            p_fl_bits: canonical_bits(model.p_fl()),
            p_rc_bits: canonical_bits(model.p_rc()),
            initial_up_bits: canonical_bits(dynamics.initial().up()),
            outages: dynamics
                .outages()
                .iter()
                .map(|o| (o.start, o.end))
                .collect(),
        }
    }
}

/// Canonical signature of a compiled [`PathProblem`]: per-hop dynamics
/// keys with their frame slots, the super-frame shape `(F_up, T_down)`,
/// the reporting interval `Is` and the message TTL. This is the complete
/// input of a path solve, so equal signatures guarantee bit-identical
/// [`crate::path::PathEvaluation`]s from the fast backend. Physical-link
/// identity ([`crate::ir::ProblemHop::link`]) is deliberately excluded:
/// two paths crossing different physical links with identical dynamics
/// are the same computation.
/// The per-hop keys live behind an `Arc` so cloning a signature (which
/// the engine does once per cache operation) is a reference-count bump,
/// and the content hash is computed once at construction so `HashMap`
/// probes and shard/worker partitioning never re-walk the hop list.
#[derive(Debug, Clone)]
pub struct PathSignature {
    hops: Arc<[(DynamicsKey, usize)]>,
    uplink_slots: u32,
    downlink_slots: u32,
    interval_cycles: u32,
    ttl: u32,
    /// Precomputed content hash (fixed-key `DefaultHasher`, so it is
    /// deterministic within a process — see [`PathSignature::affinity`]).
    hash: u64,
}

impl PartialEq for PathSignature {
    fn eq(&self, other: &PathSignature) -> bool {
        // The hash is a pure function of the remaining fields, so it acts
        // as a cheap reject before the hop-list walk.
        self.hash == other.hash
            && self.uplink_slots == other.uplink_slots
            && self.downlink_slots == other.downlink_slots
            && self.interval_cycles == other.interval_cycles
            && self.ttl == other.ttl
            && self.hops == other.hops
    }
}

impl Eq for PathSignature {}

impl Hash for PathSignature {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PathSignature {
    /// Derives the canonical signature of a compiled problem (the
    /// implementation behind [`PathProblem::signature`]).
    pub(crate) fn of_problem(problem: &PathProblem) -> PathSignature {
        let hops: Vec<(DynamicsKey, usize)> = problem
            .hops()
            .iter()
            .map(|h| (DynamicsKey::of(h.dynamics()), h.frame_slot()))
            .collect();
        let uplink_slots = problem.superframe().uplink_slots();
        let downlink_slots = problem.superframe().downlink_slots();
        let interval_cycles = problem.interval().cycles();
        let ttl = problem.ttl();
        let mut hasher = DefaultHasher::new();
        hops.hash(&mut hasher);
        uplink_slots.hash(&mut hasher);
        downlink_slots.hash(&mut hasher);
        interval_cycles.hash(&mut hasher);
        ttl.hash(&mut hasher);
        PathSignature {
            hops: hops.into(),
            uplink_slots,
            downlink_slots,
            interval_cycles,
            ttl,
            hash: hasher.finish(),
        }
    }

    /// The precomputed content hash, for partitioning work and cache
    /// shards by signature. Stable for equal signatures within one
    /// process (it feeds scheduling decisions, never results), and equal
    /// signatures always share one affinity value.
    pub fn affinity(&self) -> u64 {
        self.hash
    }
}

impl PathModel {
    /// Derives the canonical cache signature of this path model — defined
    /// as the signature of its compiled [`PathProblem`], so models and
    /// problems always agree on cache identity.
    pub fn signature(&self) -> PathSignature {
        self.compile().signature()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::Outage;
    use crate::sweeps::{chain_model, section_v_model};
    use whart_channel::{LinkModel, LinkState};
    use whart_net::ReportingInterval;

    fn link(pi: f64) -> LinkModel {
        LinkModel::from_availability(pi, 0.9).unwrap()
    }

    #[test]
    fn equal_models_have_equal_signatures() {
        let a = section_v_model(0.83, ReportingInterval::REGULAR).unwrap();
        let b = section_v_model(0.83, ReportingInterval::REGULAR).unwrap();
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn negative_zero_normalizes() {
        assert_eq!(canonical_bits(-0.0), canonical_bits(0.0));
        assert_ne!(canonical_bits(-0.25), canonical_bits(0.25));
    }

    #[test]
    fn availability_changes_the_signature() {
        let a = section_v_model(0.83, ReportingInterval::REGULAR).unwrap();
        let b = section_v_model(0.903, ReportingInterval::REGULAR).unwrap();
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn interval_and_hop_count_change_the_signature() {
        let one = chain_model(1, 0.83, ReportingInterval::REGULAR).unwrap();
        let two = chain_model(2, 0.83, ReportingInterval::REGULAR).unwrap();
        assert_ne!(one.signature(), two.signature());
        let fast = chain_model(1, 0.83, ReportingInterval::FAST).unwrap();
        assert_ne!(one.signature(), fast.signature());
    }

    #[test]
    fn slots_change_the_signature() {
        let build = |slot| {
            let mut b = PathModel::builder();
            b.add_hop(LinkDynamics::steady(link(0.83)), slot);
            b.superframe(whart_net::Superframe::symmetric(7).unwrap())
                .interval(ReportingInterval::REGULAR);
            b.build().unwrap()
        };
        assert_ne!(build(2).signature(), build(3).signature());
    }

    #[test]
    fn initial_state_and_outages_change_the_signature() {
        let steady = LinkDynamics::steady(link(0.83));
        let down = LinkDynamics::starting_in(link(0.83), LinkState::Down);
        assert_ne!(DynamicsKey::of(&steady), DynamicsKey::of(&down));
        let outage = steady.clone().with_outage(Outage::new(10, 20));
        assert_ne!(DynamicsKey::of(&steady), DynamicsKey::of(&outage));
        let other_window = steady.clone().with_outage(Outage::new(10, 30));
        assert_ne!(DynamicsKey::of(&outage), DynamicsKey::of(&other_window));
    }

    #[test]
    fn ttl_changes_the_signature() {
        let full = chain_model(2, 0.83, ReportingInterval::REGULAR).unwrap();
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(link(0.83)), 0)
            .add_hop(LinkDynamics::steady(link(0.83)), 1);
        b.superframe(whart_net::Superframe::symmetric(2).unwrap())
            .interval(ReportingInterval::REGULAR)
            .ttl(1);
        let short = b.build().unwrap();
        assert_ne!(full.signature(), short.signature());
    }
}
