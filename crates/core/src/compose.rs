//! Path compositionality and performance prediction
//! (Sections V-D and VI-E).
//!
//! The cycle probability function of a composed path is the convolution of
//! its components' functions (Eq. 12 — the paper's "time-shifted by one"
//! disappears with 0-based cycle indexing). This predicts the performance
//! of a route through a peer path *without* rebuilding the DTMC, which is
//! how a joining node chooses its attachment point (Fig. 20, Table IV).

use crate::error::{ModelError, Result};
use crate::path::PathEvaluation;
use whart_channel::LinkModel;
use whart_dtmc::Pmf;
use whart_net::{ReportingInterval, Superframe};

/// Composes two cycle probability functions (Eq. 12), truncating to the
/// reporting interval: a message that needs `i` extra cycles on the peer
/// path and `j` on the existing path arrives after `i + j` extra cycles.
pub fn compose_cycle_probabilities(peer: &Pmf, existing: &Pmf, interval: ReportingInterval) -> Pmf {
    peer.convolve(existing)
        .truncated(interval.cycles() as usize)
}

/// The cycle probability function of a prospective 1-hop peer path over a
/// link with the given model: geometric with the link's stationary
/// availability (the peer link's transition probabilities are all the
/// prediction needs, Section VI-E).
pub fn peer_cycle_probabilities(link: LinkModel, interval: ReportingInterval) -> Pmf {
    Pmf::geometric(link.availability(), interval.cycles() as usize)
        .expect("availability is a probability")
}

/// A predicted composed route.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionPrediction {
    /// Cycle probability function of the composed path (Eq. 12, truncated).
    pub cycle_probabilities: Pmf,
    /// Predicted reachability (Eq. 6 on the composed function).
    pub reachability: f64,
    /// Hop count of the composed path — each extra hop costs one more
    /// schedule slot, i.e. roughly +10 ms expected delay (the paper's
    /// tie-break between paths alpha and beta).
    pub hop_count: usize,
}

/// Predicts the performance of attaching via a peer path (with the given
/// cycle function and hop count) to an evaluated existing path.
///
/// # Errors
///
/// Returns [`ModelError::Inconsistent`] if the peer function is empty.
pub fn predict_composition(
    peer: &Pmf,
    peer_hops: usize,
    existing: &PathEvaluation,
) -> Result<CompositionPrediction> {
    if peer.is_empty() {
        return Err(ModelError::Inconsistent {
            reason: "peer path has an empty cycle probability function".into(),
        });
    }
    let composed =
        compose_cycle_probabilities(peer, existing.cycle_probabilities(), existing.interval());
    let reachability = composed.total_mass();
    Ok(CompositionPrediction {
        cycle_probabilities: composed,
        reachability,
        hop_count: peer_hops + existing.hop_count(),
    })
}

/// Converts a prediction into a [`PathEvaluation`] so the usual measures
/// apply (the composed path inherits the existing path's super-frame and
/// arrival slot; with `extra_slots` more transmissions the arrival slot
/// shifts accordingly once the schedule is extended).
pub fn prediction_to_evaluation(
    prediction: &CompositionPrediction,
    existing: &PathEvaluation,
) -> PathEvaluation {
    PathEvaluation::from_parts(
        prediction.cycle_probabilities.clone(),
        existing.arrival_slot_number(),
        prediction.hop_count,
        existing.superframe(),
        existing.interval(),
    )
}

/// Builds a full [`PathEvaluation`] from an Eq. 12 composed cycle
/// probability function and an explicit schedule placement.
///
/// For steady links served in increasing slot order within one frame, a
/// path's cycle probability function depends only on its link chain, not
/// on where the schedule places the hops — but the delay measures do
/// depend on the arrival slot. This helper lets a caller evaluate (or
/// compose) the cycle function once at canonical slots and then re-attach
/// the real arrival slot of a candidate schedule, which is how the
/// what-if optimizer prices schedule moves without re-solving the DTMC.
///
/// # Errors
///
/// Returns [`ModelError::Inconsistent`] if the cycle function is empty or
/// longer than the reporting interval, if `hop_count` is zero, or if
/// `arrival_slot_number` lies outside the super-frame's uplink half
/// (`1..=F_up`).
pub fn evaluation_at_slot(
    cycle_probabilities: Pmf,
    arrival_slot_number: u32,
    hop_count: usize,
    superframe: Superframe,
    interval: ReportingInterval,
) -> Result<PathEvaluation> {
    if cycle_probabilities.is_empty() {
        return Err(ModelError::Inconsistent {
            reason: "composed cycle probability function is empty".into(),
        });
    }
    if cycle_probabilities.len() > interval.cycles() as usize {
        return Err(ModelError::Inconsistent {
            reason: format!(
                "cycle function has {} entries but the reporting interval only spans {} cycles",
                cycle_probabilities.len(),
                interval.cycles()
            ),
        });
    }
    if hop_count == 0 {
        return Err(ModelError::Inconsistent {
            reason: "composed path needs at least one hop".into(),
        });
    }
    if !(1..=superframe.uplink_slots()).contains(&arrival_slot_number) {
        return Err(ModelError::Inconsistent {
            reason: format!(
                "arrival slot {arrival_slot_number} outside the uplink half 1..={}",
                superframe.uplink_slots()
            ),
        });
    }
    Ok(PathEvaluation::from_parts(
        cycle_probabilities,
        arrival_slot_number,
        hop_count,
        superframe,
        interval,
    ))
}

/// Ranks candidate attachments the way Section VI-E decides between paths
/// alpha and beta: maximize reachability; when predictions are within
/// `reachability_tolerance` of each other, prefer fewer hops (each extra
/// hop costs a schedule slot and ~10 ms of delay).
///
/// Returns candidate indices from best to worst.
pub fn rank_candidates(
    candidates: &[CompositionPrediction],
    reachability_tolerance: f64,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        let (ca, cb) = (&candidates[a], &candidates[b]);
        if (ca.reachability - cb.reachability).abs() <= reachability_tolerance {
            ca.hop_count.cmp(&cb.hop_count)
        } else {
            cb.reachability
                .partial_cmp(&ca.reachability)
                .expect("finite reachability")
        }
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LinkDynamics;
    use crate::path::PathModel;
    use whart_channel::{EbN0, Modulation, WIRELESSHART_MESSAGE_BITS};
    use whart_net::Superframe;

    /// An existing n-hop path at availability pi, hops in slots 1..=n.
    fn existing(hops: usize, pi: f64) -> PathEvaluation {
        let mut b = PathModel::builder();
        for k in 0..hops {
            b.add_hop(
                LinkDynamics::steady(LinkModel::from_availability(pi, 0.9).unwrap()),
                k,
            );
        }
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::REGULAR);
        b.build().unwrap().evaluate()
    }

    fn peer_from_snr(snr: f64) -> LinkModel {
        LinkModel::from_snr(
            Modulation::Oqpsk,
            EbN0::from_linear(snr),
            WIRELESSHART_MESSAGE_BITS,
            0.9,
        )
        .unwrap()
    }

    #[test]
    fn table_iv_path_alpha() {
        // Peer n5 -> n3 at Eb/N0 = 7 (p_fl = 0.089) composed with the 2-hop
        // existing path 1 at pi = 0.83.
        let peer = peer_cycle_probabilities(peer_from_snr(7.0), ReportingInterval::REGULAR);
        let prediction = predict_composition(&peer, 1, &existing(2, 0.83)).unwrap();
        let g = &prediction.cycle_probabilities;
        assert!((g.get(0) - 0.6274).abs() < 1e-3, "{}", g.get(0));
        assert!((g.get(1) - 0.2694).abs() < 1e-3);
        assert!((g.get(2) - 0.0784).abs() < 1e-3);
        assert!((g.get(3) - 0.0193).abs() < 1e-3);
        assert!((prediction.reachability - 0.9946).abs() < 1e-3);
        assert_eq!(prediction.hop_count, 3);
    }

    #[test]
    fn table_iv_path_beta() {
        // Peer n5 -> n4 at Eb/N0 = 6 (p_fl = 0.237) composed with the 1-hop
        // existing path 2.
        let peer = peer_cycle_probabilities(peer_from_snr(6.0), ReportingInterval::REGULAR);
        let prediction = predict_composition(&peer, 1, &existing(1, 0.83)).unwrap();
        let g = &prediction.cycle_probabilities;
        assert!((g.get(0) - 0.6573).abs() < 1e-3, "{}", g.get(0));
        assert!((g.get(1) - 0.2485).abs() < 1e-3);
        assert!((g.get(2) - 0.0707).abs() < 1e-3);
        assert!((g.get(3) - 0.0180).abs() < 1e-3);
        assert!((prediction.reachability - 0.9945).abs() < 1e-3);
        assert_eq!(prediction.hop_count, 2);
    }

    #[test]
    fn ranking_prefers_fewer_hops_on_ties() {
        // Table IV's conclusion: R_alpha ~ R_beta, so the 2-hop path beta is
        // preferred.
        let alpha = predict_composition(
            &peer_cycle_probabilities(peer_from_snr(7.0), ReportingInterval::REGULAR),
            1,
            &existing(2, 0.83),
        )
        .unwrap();
        let beta = predict_composition(
            &peer_cycle_probabilities(peer_from_snr(6.0), ReportingInterval::REGULAR),
            1,
            &existing(1, 0.83),
        )
        .unwrap();
        let order = rank_candidates(&[alpha, beta], 0.001);
        assert_eq!(order, vec![1, 0]); // beta first
    }

    #[test]
    fn ranking_prefers_reachability_outside_tolerance() {
        let strong = predict_composition(
            &peer_cycle_probabilities(peer_from_snr(9.0), ReportingInterval::REGULAR),
            1,
            &existing(1, 0.948),
        )
        .unwrap();
        let weak = predict_composition(
            &peer_cycle_probabilities(peer_from_snr(4.0), ReportingInterval::REGULAR),
            1,
            &existing(3, 0.693),
        )
        .unwrap();
        let order = rank_candidates(&[weak.clone(), strong.clone()], 1e-6);
        assert_eq!(order, vec![1, 0]);
        assert!(strong.reachability > weak.reachability);
    }

    #[test]
    fn composition_matches_direct_evaluation() {
        // Composing two segments evaluated separately must equal evaluating
        // the full path, when the schedule serves the segments in order
        // within each frame (peer hops before existing hops).
        let pi = 0.83;
        let full = existing(3, pi); // 3 hops in slots 1..3
        let peer_seg = existing(1, pi);
        let exist_seg = existing(2, pi);
        let composed = compose_cycle_probabilities(
            peer_seg.cycle_probabilities(),
            exist_seg.cycle_probabilities(),
            ReportingInterval::REGULAR,
        );
        for i in 0..4 {
            assert!(
                (composed.get(i) - full.cycle_probabilities().get(i)).abs() < 1e-12,
                "cycle {i}"
            );
        }
    }

    #[test]
    fn prediction_to_evaluation_supports_measures() {
        let peer = peer_cycle_probabilities(peer_from_snr(7.0), ReportingInterval::REGULAR);
        let ex = existing(2, 0.83);
        let prediction = predict_composition(&peer, 1, &ex).unwrap();
        let eval = prediction_to_evaluation(&prediction, &ex);
        assert!((eval.reachability() - prediction.reachability).abs() < 1e-12);
        assert_eq!(eval.hop_count(), 3);
        assert!(eval
            .expected_delay_ms(crate::measures::DelayConvention::Absolute)
            .is_some());
    }

    #[test]
    fn empty_peer_rejected() {
        let ex = existing(1, 0.83);
        assert!(predict_composition(&Pmf::default(), 1, &ex).is_err());
    }

    #[test]
    fn evaluation_at_slot_round_trips_and_shifts_delay() {
        use crate::measures::DelayConvention;
        let full = existing(3, 0.83);
        let same = evaluation_at_slot(
            full.cycle_probabilities().clone(),
            full.arrival_slot_number(),
            full.hop_count(),
            full.superframe(),
            full.interval(),
        )
        .unwrap();
        assert!((same.reachability() - full.reachability()).abs() < 1e-15);
        let d_full = full.expected_delay_ms(DelayConvention::Absolute).unwrap();
        let d_same = same.expected_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((d_full - d_same).abs() < 1e-12);

        // Re-attaching the same cycle function two slots later adds
        // exactly two slot times to the conditional expected delay.
        let shifted = evaluation_at_slot(
            full.cycle_probabilities().clone(),
            full.arrival_slot_number() + 2,
            full.hop_count(),
            full.superframe(),
            full.interval(),
        )
        .unwrap();
        let d_shift = shifted
            .expected_delay_ms(DelayConvention::Absolute)
            .unwrap();
        assert!((d_shift - d_same - 2.0 * f64::from(whart_net::SLOT_MS)).abs() < 1e-9);
    }

    #[test]
    fn evaluation_at_slot_rejects_bad_inputs() {
        let frame = Superframe::symmetric(20).unwrap();
        let interval = ReportingInterval::REGULAR;
        let pmf = Pmf::geometric(0.75, interval.cycles() as usize).unwrap();
        assert!(evaluation_at_slot(Pmf::default(), 1, 1, frame, interval).is_err());
        assert!(evaluation_at_slot(pmf.clone(), 0, 1, frame, interval).is_err());
        assert!(evaluation_at_slot(pmf.clone(), 21, 1, frame, interval).is_err());
        assert!(evaluation_at_slot(pmf.clone(), 1, 0, frame, interval).is_err());
        let long = Pmf::geometric(0.5, interval.cycles() as usize + 1).unwrap();
        assert!(evaluation_at_slot(long, 1, 1, frame, interval).is_err());
    }
}
