//! Sensitivity analysis: which link should the operator fix first?
//!
//! The paper observes that "the longest path with the lowest link
//! availability forms the bottleneck of the network and improving the
//! bottleneck can considerably improve the network performance"
//! (Section VI-A). This module makes that advice quantitative: the
//! *improvement potential* of each physical link is the gain in a network
//! objective when that link's availability is nudged upward, computed by
//! re-evaluating the model with a perturbed link (finite differences on
//! the hierarchical DTMC).

use crate::error::Result;
use crate::measures::DelayConvention;
use crate::network::NetworkModel;
use crate::LinkDynamics;
use whart_channel::LinkModel;
use whart_net::NodeId;

/// The objective a perturbation is scored against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize total message loss: `sum_p (1 - R_p)`.
    TotalLoss,
    /// Minimize the worst per-path loss: `max_p (1 - R_p)`.
    WorstPathLoss,
    /// Minimize the overall mean delay `E[Gamma]`.
    MeanDelay,
}

/// One link's improvement potential.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSensitivity {
    /// The physical link (undirected key).
    pub link: (NodeId, NodeId),
    /// Its current stationary availability.
    pub availability: f64,
    /// Objective value after improving this link by the step.
    pub improved_objective: f64,
    /// Objective reduction achieved (`baseline - improved`; larger is
    /// better).
    pub gain: f64,
}

/// Scores every physical link of the network by the objective gain from
/// raising its availability by `step` (capped at 1), and returns the links
/// sorted by decreasing gain — the operator's repair priority list.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn rank_link_improvements(
    model: &NetworkModel,
    objective: Objective,
    step: f64,
) -> Result<Vec<LinkSensitivity>> {
    let baseline = objective_value(&model.evaluate()?, objective);
    let mut out = Vec::new();
    for (link, quality) in model.topology().links() {
        let improved_availability = (quality.availability() + step).min(1.0 - 1e-9);
        let improved =
            LinkModel::from_availability(improved_availability, quality.p_rc()).unwrap_or(quality);
        let mut perturbed = model.clone();
        perturbed.override_link_dynamics(link.0, link.1, LinkDynamics::steady(improved))?;
        let value = objective_value(&perturbed.evaluate()?, objective);
        out.push(LinkSensitivity {
            link,
            availability: quality.availability(),
            improved_objective: value,
            gain: baseline - value,
        });
    }
    out.sort_by(|a, b| b.gain.partial_cmp(&a.gain).expect("gains are finite"));
    Ok(out)
}

fn objective_value(eval: &crate::network::NetworkEvaluation, objective: Objective) -> f64 {
    match objective {
        Objective::TotalLoss => eval.reachabilities().iter().map(|r| 1.0 - r).sum(),
        Objective::WorstPathLoss => eval
            .reachabilities()
            .iter()
            .map(|r| 1.0 - r)
            .fold(0.0, f64::max),
        Objective::MeanDelay => eval
            .mean_delay_ms(DelayConvention::Absolute)
            .unwrap_or(f64::INFINITY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whart_net::typical::TypicalNetwork;
    use whart_net::ReportingInterval;

    fn model_with_weak_e3() -> NetworkModel {
        let link = LinkModel::from_availability(0.9, 0.9).unwrap();
        let mut net = TypicalNetwork::new(link);
        // Degrade e3 = (n3, G), the link shared by paths 3, 7, 8, 10.
        net.set_link(
            NodeId::field(3),
            NodeId::Gateway,
            LinkModel::from_availability(0.7, 0.9).unwrap(),
        )
        .unwrap();
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR).unwrap()
    }

    #[test]
    fn weak_shared_link_tops_the_repair_list() {
        let model = model_with_weak_e3();
        let ranking = rank_link_improvements(&model, Objective::TotalLoss, 0.05).unwrap();
        assert_eq!(ranking.len(), 10);
        // The degraded, heavily shared e3 gives the largest gain.
        let top = &ranking[0];
        assert_eq!(top.link, (NodeId::Gateway, NodeId::field(3)));
        assert!((top.availability - 0.7).abs() < 1e-9);
        assert!(top.gain > 0.0);
        // All gains are non-negative: improving a link never hurts.
        assert!(ranking.iter().all(|s| s.gain >= -1e-12));
    }

    #[test]
    fn leaf_links_matter_less_than_shared_links() {
        // With homogeneous links, improving e3 (4 paths) beats improving
        // the (n10, n7) leaf link (1 path).
        let link = LinkModel::from_availability(0.83, 0.9).unwrap();
        let net = TypicalNetwork::new(link);
        let model =
            NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR)
                .unwrap();
        let ranking = rank_link_improvements(&model, Objective::TotalLoss, 0.05).unwrap();
        let gain_of = |a: NodeId, b: NodeId| {
            let key = whart_net::Hop::new(a, b).undirected_key();
            ranking
                .iter()
                .find(|s| s.link == key)
                .expect("link ranked")
                .gain
        };
        assert!(
            gain_of(NodeId::field(3), NodeId::Gateway)
                > gain_of(NodeId::field(10), NodeId::field(7))
        );
    }

    #[test]
    fn worst_path_objective_targets_the_bottleneck_path() {
        let model = model_with_weak_e3();
        let ranking = rank_link_improvements(&model, Objective::WorstPathLoss, 0.05).unwrap();
        // The worst path (10: n10 -> n7 -> n3 -> G) crosses e3; improving a
        // link not on any 3-hop path gains nothing for this objective.
        let top_links: Vec<_> = ranking.iter().take(3).map(|s| s.link).collect();
        assert!(top_links.contains(&(NodeId::Gateway, NodeId::field(3))));
        let unrelated = ranking
            .iter()
            .find(|s| s.link == (NodeId::field(1), NodeId::field(4)))
            .expect("ranked");
        assert!(unrelated.gain.abs() < 1e-12);
    }

    #[test]
    fn delay_objective_ranks_by_latency_gain() {
        let model = model_with_weak_e3();
        let ranking = rank_link_improvements(&model, Objective::MeanDelay, 0.05).unwrap();
        assert!(ranking[0].gain > 0.0);
        // Gains are in milliseconds here — sanity-bound them.
        assert!(ranking[0].gain < 100.0);
    }
}
