//! Closed-loop (control-cycle) analysis.
//!
//! A WirelessHART control loop closes in two legs: the sensor report
//! travels uplink, the PID output returns downlink over the symmetric
//! route (Section II). The paper touches this once — "the control-loop
//! could be completed in one cycle with probability 0.4219^2 = 0.178" —
//! and the machinery is the same convolution as path composition: the
//! loop needs `i + j - 1` cycles when the legs need `i` and `j`.

use crate::compose::compose_cycle_probabilities;
use crate::path::PathEvaluation;
use whart_dtmc::Pmf;

/// The round-trip behaviour of a control loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAnalysis {
    /// Probability the loop completes within `i + 1` cycles (0-based pmf
    /// over the reporting interval, like a cycle probability function).
    pub cycle_probabilities: Pmf,
    /// Probability the loop completes within the reporting interval.
    pub completion_probability: f64,
    /// Probability the loop completes within a single cycle (the paper's
    /// `0.4219^2` figure for the Section V example).
    pub one_cycle_probability: f64,
}

/// Analyses a loop whose uplink and downlink legs have the given
/// evaluations (pass the uplink twice for the paper's symmetric
/// assumption).
///
/// The downlink command can only start in the cycle the uplink report
/// arrived, so the loop's cycle count is the composition of the legs.
pub fn analyze_loop(uplink: &PathEvaluation, downlink: &PathEvaluation) -> LoopAnalysis {
    let composed = compose_cycle_probabilities(
        uplink.cycle_probabilities(),
        downlink.cycle_probabilities(),
        uplink.interval(),
    );
    LoopAnalysis {
        completion_probability: composed.total_mass(),
        one_cycle_probability: composed.get(0),
        cycle_probabilities: composed,
    }
}

/// Symmetric loop: downlink statistics mirror the uplink (the paper's
/// "symmetric up and downlinks" assumption).
pub fn analyze_symmetric_loop(uplink: &PathEvaluation) -> LoopAnalysis {
    analyze_loop(uplink, uplink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LinkDynamics;
    use crate::path::PathModel;
    use whart_channel::LinkModel;
    use whart_net::{ReportingInterval, Superframe};

    fn example_eval(pi: f64) -> PathEvaluation {
        let link = LinkModel::from_availability(pi, 0.9).unwrap();
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(link), 2)
            .add_hop(LinkDynamics::steady(link), 5)
            .add_hop(LinkDynamics::steady(link), 6)
            .superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        b.build().unwrap().evaluate()
    }

    #[test]
    fn paper_one_cycle_figure() {
        // Section V-A: 0.4219^2 = 0.178.
        let analysis = analyze_symmetric_loop(&example_eval(0.75));
        assert!((analysis.one_cycle_probability - 0.178).abs() < 5e-4);
    }

    #[test]
    fn loop_completion_needs_both_legs() {
        let up = example_eval(0.75);
        let analysis = analyze_symmetric_loop(&up);
        // The loop completes less often than a single leg delivers.
        assert!(analysis.completion_probability < up.reachability());
        // And the distribution is a proper sub-stochastic pmf.
        assert!(analysis.cycle_probabilities.total_mass() <= 1.0);
        assert!(
            (analysis.cycle_probabilities.total_mass() - analysis.completion_probability).abs()
                < 1e-12
        );
    }

    #[test]
    fn asymmetric_legs_compose() {
        let up = example_eval(0.75);
        let down = example_eval(0.948);
        let analysis = analyze_loop(&up, &down);
        // First cycle: both legs succeed in their first cycle.
        let expected = up.cycle_probabilities().get(0) * down.cycle_probabilities().get(0);
        assert!((analysis.one_cycle_probability - expected).abs() < 1e-12);
        // Better downlink beats the symmetric worst case.
        let symmetric = analyze_symmetric_loop(&up);
        assert!(analysis.completion_probability > symmetric.completion_probability);
    }

    #[test]
    fn perfect_legs_close_in_one_cycle() {
        let up = example_eval(0.9999999);
        let analysis = analyze_symmetric_loop(&up);
        assert!(analysis.one_cycle_probability > 0.999999);
        assert!(analysis.completion_probability > 0.999999);
    }
}
