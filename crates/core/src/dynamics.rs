//! Per-link stochastic dynamics over absolute slots.
//!
//! The hierarchical model (Section IV) lets every hop's success probability
//! vary per slot: the link DTMCs "evolve simultaneously with the path DTMC".
//! [`LinkDynamics`] captures the three situations the paper evaluates:
//!
//! * links already in steady state (the default for Sections V and VI-A);
//! * links started from an arbitrary distribution (Fig. 17's recovery
//!   curves, "different initial situations, like links being up or down
//!   initially");
//! * links forced DOWN for a window of slots (the fine-grained variant of
//!   the Section VI-C random-duration failures).
//!
//! Time is measured in *absolute* slots from the start of the evaluation
//! (uplink and downlink slots both advance the link chain; the path model
//! maps its uplink slots onto this axis).

use whart_channel::{LinkDistribution, LinkModel, LinkState};

/// A window of absolute slots `[start, end)` during which a link is forced
/// DOWN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First affected absolute slot.
    pub start: u64,
    /// First slot after the outage.
    pub end: u64,
}

impl Outage {
    /// Creates an outage window.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "outage window must be non-empty");
        Outage { start, end }
    }

    /// Whether the window covers a slot.
    pub fn covers(self, slot: u64) -> bool {
        (self.start..self.end).contains(&slot)
    }
}

/// The time-dependent behaviour of one link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDynamics {
    model: LinkModel,
    initial: LinkDistribution,
    outages: Vec<Outage>,
}

impl LinkDynamics {
    /// A link already in steady state at slot 0 (the paper's default
    /// assumption: "all links have already reached steady state at the
    /// beginning of the evaluation").
    pub fn steady(model: LinkModel) -> Self {
        LinkDynamics {
            model,
            initial: model.steady_state(),
            outages: Vec::new(),
        }
    }

    /// A link starting from an explicit distribution at slot 0.
    pub fn starting_from(model: LinkModel, initial: LinkDistribution) -> Self {
        LinkDynamics {
            model,
            initial,
            outages: Vec::new(),
        }
    }

    /// A link starting in a definite state at slot 0.
    pub fn starting_in(model: LinkModel, state: LinkState) -> Self {
        Self::starting_from(model, LinkDistribution::certain(state))
    }

    /// Adds an outage window: the link is DOWN with certainty throughout,
    /// and resumes its Markov evolution from the DOWN state afterwards
    /// (physical obstruction defeats channel hopping; once the obstruction
    /// clears the chain recovers at `p_rc` per slot).
    pub fn with_outage(mut self, outage: Outage) -> Self {
        self.outages.push(outage);
        self.outages.sort_by_key(|o| o.start);
        self
    }

    /// The underlying two-state link model.
    pub fn model(&self) -> LinkModel {
        self.model
    }

    /// The distribution at slot 0.
    pub fn initial(&self) -> LinkDistribution {
        self.initial
    }

    /// The scheduled outage windows, sorted by start slot.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The probability that the link is UP at an absolute slot, accounting
    /// for the initial distribution and any outage windows (Eq. 3; for a
    /// steady start without outages this is the constant Eq. 4).
    pub fn up_probability(&self, slot: u64) -> f64 {
        // Inside an outage the link is down with certainty.
        for o in &self.outages {
            if o.covers(slot) {
                return 0.0;
            }
        }
        // Evolve from the most recent anchor: either slot 0 with the
        // configured initial distribution, or the last slot of the most
        // recent outage (certainly DOWN), so the first post-outage slot has
        // already taken one recovery step (P(up) = p_rc).
        let mut anchor_slot = 0u64;
        let mut anchor = self.initial;
        for o in &self.outages {
            if o.end <= slot && o.end > anchor_slot {
                anchor_slot = o.end - 1;
                anchor = LinkDistribution::certain(LinkState::Down);
            }
        }
        self.model.after(anchor, slot - anchor_slot).up()
    }

    /// The UP-probability trajectory for slots `0..=slots`.
    pub fn up_trajectory(&self, slots: u64) -> Vec<f64> {
        (0..=slots).map(|t| self.up_probability(t)).collect()
    }

    /// Whether the dynamics are constant over time (steady start, no
    /// outages) — enables a fast path in the evaluator.
    pub fn is_time_invariant(&self) -> bool {
        self.outages.is_empty() && (self.initial.up() - self.model.availability()).abs() < 1e-15
    }

    /// Whether `up_probability` returns the *same bits* at every slot:
    /// no outages and an initial distribution exactly on the stationary
    /// point, so the transient term of Eq. 3 is exactly `0.0` rather
    /// than merely negligible. [`LinkDynamics::steady`] satisfies this
    /// by construction; it is the predicate behind slot-shift
    /// canonicalization in the batch engine, where bit-identical
    /// results are required (not 1e-15-close ones).
    pub fn is_exactly_stationary(&self) -> bool {
        self.outages.is_empty() && (self.initial.up() - self.model.availability()) == 0.0
    }
}

impl From<LinkModel> for LinkDynamics {
    /// Defaults to the steady-state assumption.
    fn from(model: LinkModel) -> Self {
        LinkDynamics::steady(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinkModel {
        LinkModel::new(0.184, 0.9).unwrap()
    }

    #[test]
    fn steady_links_are_constant() {
        let d = LinkDynamics::steady(model());
        assert!(d.is_time_invariant());
        let pi = model().availability();
        for t in [0, 1, 5, 100, 10_000] {
            assert!((d.up_probability(t) - pi).abs() < 1e-12);
        }
    }

    #[test]
    fn fig17_recovery_curve() {
        // Fig. 17: starting DOWN, P(up) jumps to 0.9 after one slot and is at
        // steady state almost immediately.
        let d = LinkDynamics::starting_in(model(), LinkState::Down);
        assert!(!d.is_time_invariant());
        let traj = d.up_trajectory(6);
        assert_eq!(traj[0], 0.0);
        assert!((traj[1] - 0.9).abs() < 1e-12);
        assert!((traj[6] - model().availability()).abs() < 1e-3);
    }

    #[test]
    fn outage_forces_down_then_recovers() {
        let d = LinkDynamics::steady(model()).with_outage(Outage::new(10, 14));
        assert!((d.up_probability(9) - model().availability()).abs() < 1e-12);
        for t in 10..14 {
            assert_eq!(d.up_probability(t), 0.0);
        }
        // The first slot after the outage recovers with p_rc...
        assert!((d.up_probability(14) - 0.9).abs() < 1e-12);
        // ...and the chain heads back towards steady state from there.
        let expected_15 = model()
            .after(LinkDistribution::certain(LinkState::Down), 2)
            .up();
        assert!((d.up_probability(15) - expected_15).abs() < 1e-12);
        assert!((d.up_probability(200) - model().availability()).abs() < 1e-12);
    }

    #[test]
    fn multiple_outages_anchor_to_latest() {
        let d = LinkDynamics::steady(model())
            .with_outage(Outage::new(30, 32))
            .with_outage(Outage::new(10, 12));
        assert_eq!(d.up_probability(31), 0.0);
        assert!((d.up_probability(32) - 0.9).abs() < 1e-12);
        assert!((d.up_probability(12) - 0.9).abs() < 1e-12);
        assert!(!d.is_time_invariant());
    }

    #[test]
    fn outage_end_is_exclusive() {
        let o = Outage::new(5, 8);
        assert!(!o.covers(4));
        assert!(o.covers(5));
        assert!(o.covers(7));
        assert!(!o.covers(8));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_outage_rejected() {
        let _ = Outage::new(5, 5);
    }

    #[test]
    fn from_link_model_is_steady() {
        let d: LinkDynamics = model().into();
        assert!(d.is_time_invariant());
        assert_eq!(d.model(), model());
        assert!((d.initial().up() - model().availability()).abs() < 1e-15);
    }
}
