//! Error type for the hierarchical model.

use std::fmt;

/// Errors produced while building or evaluating path and network models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// An underlying DTMC operation failed.
    Dtmc(whart_dtmc::DtmcError),
    /// An underlying channel-layer operation failed.
    Channel(whart_channel::ChannelError),
    /// An underlying network-layer operation failed.
    Net(whart_net::NetError),
    /// The model's inputs are mutually inconsistent.
    Inconsistent {
        /// Explanation of the defect.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Dtmc(e) => write!(f, "dtmc error: {e}"),
            ModelError::Channel(e) => write!(f, "channel error: {e}"),
            ModelError::Net(e) => write!(f, "network error: {e}"),
            ModelError::Inconsistent { reason } => write!(f, "inconsistent model: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Dtmc(e) => Some(e),
            ModelError::Channel(e) => Some(e),
            ModelError::Net(e) => Some(e),
            ModelError::Inconsistent { .. } => None,
        }
    }
}

impl From<whart_dtmc::DtmcError> for ModelError {
    fn from(e: whart_dtmc::DtmcError) -> Self {
        ModelError::Dtmc(e)
    }
}

impl From<whart_channel::ChannelError> for ModelError {
    fn from(e: whart_channel::ChannelError) -> Self {
        ModelError::Channel(e)
    }
}

impl From<whart_net::NetError> for ModelError {
    fn from(e: whart_net::NetError) -> Self {
        ModelError::Net(e)
    }
}

/// Convenient result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_sources() {
        let e: ModelError = whart_dtmc::DtmcError::EmptyChain.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("dtmc"));
        let e: ModelError = whart_channel::ChannelError::NoActiveChannels.into();
        assert!(e.to_string().contains("channel"));
        let e: ModelError = whart_net::NetError::InvalidPath {
            reason: "empty".into(),
        }
        .into();
        assert!(e.to_string().contains("network"));
        let e = ModelError::Inconsistent {
            reason: "schedule too short".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("schedule too short"));
    }
}
