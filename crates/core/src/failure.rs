//! Stability and robustness under link failures (Section VI-C).
//!
//! The paper distinguishes three failure classes in multi-hop control
//! networks:
//!
//! * **transient errors** — one bad slot; channel hopping recovers almost
//!   immediately (Fig. 17), captured by the link chain itself;
//! * **random-duration failures** — physical obstruction for a geometric
//!   number of cycles (hopping does not help), evaluated in Table III for
//!   a one-cycle failure of link `e3`;
//! * **permanent failures** — the link is removed from the routing graph
//!   and affected nodes re-route.
//!
//! Table III's published numbers correspond to the affected paths losing
//! the entire failure window: reachability within the remaining
//! `Is - k` cycles ([`reachability_with_lost_cycles`]). The finer-grained
//! mechanism — the failed link forced DOWN for a slot window while
//! *upstream* hops still progress — is available through
//! [`forced_outage_cycles`] + [`crate::NetworkModel::override_link_dynamics`]
//! and is compared against the published convention as an ablation in the
//! benchmark suite.

use crate::dynamics::Outage;
use crate::error::{ModelError, Result};
use crate::path::PathModel;
use whart_net::{uplink_paths, NodeId, Path, ReportingInterval, Superframe, Topology};

/// Reachability of a path when the first `lost_cycles` cycles of its
/// reporting interval are unusable (the paper's Table III convention for a
/// failure lasting `lost_cycles` cycles).
///
/// Returns zero when the failure spans the whole interval.
///
/// # Errors
///
/// Propagates model reconstruction failures (none occur for a valid model).
pub fn reachability_with_lost_cycles(model: &PathModel, lost_cycles: u32) -> Result<f64> {
    let cycles = model.interval().cycles();
    if lost_cycles >= cycles {
        return Ok(0.0);
    }
    let remaining = ReportingInterval::new(cycles - lost_cycles)?;
    Ok(model.with_interval(remaining).evaluate().reachability())
}

/// An [`Outage`] covering whole reporting cycles `[first, first + count)`
/// (0-based cycle indices) of a super-frame — the forced-DOWN window used
/// by the fine-grained failure mechanism.
pub fn forced_outage_cycles(superframe: Superframe, first: u32, count: u32) -> Outage {
    let cycle = u64::from(superframe.cycle_slots());
    Outage::new(u64::from(first) * cycle, u64::from(first + count) * cycle)
}

/// Expected reachability under a random-duration failure whose length in
/// cycles is geometric: `P(K = k) = (1 - p)^(k-1) * p` for `k >= 1`, where
/// `p = 1 / mean_cycles`.
///
/// The failure is assumed to start with the reporting interval (the paper's
/// setup); the result mixes [`reachability_with_lost_cycles`] over the
/// duration distribution. Failures of `Is` cycles or longer contribute zero
/// reachability.
///
/// # Errors
///
/// Returns [`ModelError::Inconsistent`] if `mean_cycles < 1`.
pub fn expected_reachability_geometric_failure(model: &PathModel, mean_cycles: f64) -> Result<f64> {
    if !mean_cycles.is_finite() || mean_cycles < 1.0 {
        return Err(ModelError::Inconsistent {
            reason: format!("mean failure duration {mean_cycles} must be >= 1 cycle"),
        });
    }
    let p = 1.0 / mean_cycles;
    let q = 1.0 - p;
    let cycles = model.interval().cycles();
    let mut expected = 0.0;
    let mut weight = p; // P(K = 1)
    for k in 1..cycles {
        expected += weight * reachability_with_lost_cycles(model, k)?;
        weight *= q;
    }
    // K >= Is: reachability zero; nothing to add.
    Ok(expected)
}

/// The result of handling a permanent link failure: the repaired routing
/// table after removing the link.
#[derive(Debug, Clone, PartialEq)]
pub struct Rerouting {
    /// The topology without the failed link.
    pub topology: Topology,
    /// Fresh uplink paths for every field device.
    pub paths: Vec<Path>,
    /// Indices (into the new path list) of devices whose route changed.
    pub changed: Vec<usize>,
}

/// Handles a permanent failure of the link between `a` and `b`: removes it
/// from the routing graph and recomputes every uplink path ("the failed
/// link needs to be removed from the routing graph, and the messages should
/// be routed via other intermediate nodes").
///
/// # Errors
///
/// Returns [`ModelError::Net`] if the link does not exist or some device
/// loses connectivity entirely (no alternative route).
pub fn reroute_after_permanent_failure(
    topology: &Topology,
    a: NodeId,
    b: NodeId,
) -> Result<Rerouting> {
    let old_paths = uplink_paths(topology)?;
    let mut repaired = topology.clone();
    repaired.remove_link(a, b)?;
    let paths = uplink_paths(&repaired)?;
    let changed = paths
        .iter()
        .enumerate()
        .filter(|(i, p)| old_paths.get(*i) != Some(p))
        .map(|(i, _)| i)
        .collect();
    Ok(Rerouting {
        topology: repaired,
        paths,
        changed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LinkDynamics;
    use whart_channel::LinkModel;
    use whart_net::typical::TypicalNetwork;
    use whart_net::Schedule;

    /// Chain over the paper's BER 2e-4 operating point (pi ~ 0.8303).
    fn chain_model(hops: usize, pi: f64) -> PathModel {
        let mut b = PathModel::builder();
        for k in 0..hops {
            b.add_hop(LinkDynamics::steady(link_at(pi)), k);
        }
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::REGULAR);
        b.build().unwrap()
    }

    /// The paper's quoted availabilities are rounded; its numbers come from
    /// the BER-derived points (0.83 -> BER 2e-4 -> pi = 0.83033).
    fn link_at(pi: f64) -> LinkModel {
        if (pi - 0.83).abs() < 1e-9 {
            LinkModel::from_ber(2e-4, 1016, 0.9).unwrap()
        } else {
            LinkModel::from_availability(pi, 0.9).unwrap()
        }
    }

    #[test]
    fn table_iii_affected_paths() {
        // Table III at pi = 0.83: a one-cycle failure turns the affected
        // paths' reachability into the 3-cycle values.
        let cases = [(1, 99.92, 99.51), (2, 99.64, 98.30), (3, 99.07, 96.28)];
        for (hops, without, with) in cases {
            let model = chain_model(hops, 0.83);
            let r0 = model.evaluate().reachability() * 100.0;
            assert!(
                (r0 - without).abs() < 0.011,
                "{hops} hops: {r0} vs {without}"
            );
            let r1 = reachability_with_lost_cycles(&model, 1).unwrap() * 100.0;
            assert!((r1 - with).abs() < 0.011, "{hops} hops: {r1} vs {with}");
        }
    }

    #[test]
    fn longer_failures_degrade_more() {
        let model = chain_model(2, 0.83);
        let r: Vec<f64> = (0..5)
            .map(|k| reachability_with_lost_cycles(&model, k).unwrap())
            .collect();
        for w in r.windows(2) {
            assert!(w[1] < w[0] || (w[0] == 0.0 && w[1] == 0.0));
        }
        assert_eq!(r[4], 0.0); // failure spans the whole interval
    }

    #[test]
    fn geometric_failure_mixes_durations() {
        let model = chain_model(2, 0.83);
        // Mean duration 1 cycle: mostly one lost cycle.
        let e1 = expected_reachability_geometric_failure(&model, 1.0).unwrap();
        let r1 = reachability_with_lost_cycles(&model, 1).unwrap();
        assert!((e1 - r1).abs() < 1e-12); // p = 1 -> K = 1 surely
                                          // Longer mean durations hurt.
        let e2 = expected_reachability_geometric_failure(&model, 2.0).unwrap();
        let e4 = expected_reachability_geometric_failure(&model, 4.0).unwrap();
        assert!(e2 < e1 && e4 < e2);
        assert!(expected_reachability_geometric_failure(&model, 0.5).is_err());
    }

    #[test]
    fn forced_outage_covers_whole_cycles() {
        let sf = Superframe::symmetric(20).unwrap();
        let o = forced_outage_cycles(sf, 0, 1);
        assert_eq!((o.start, o.end), (0, 40));
        let o = forced_outage_cycles(sf, 2, 2);
        assert_eq!((o.start, o.end), (80, 160));
    }

    #[test]
    fn forced_outage_is_milder_than_lost_cycle() {
        // Ablation: with the link forced DOWN only during cycle 1, upstream
        // hops still progress, so reachability lies between the lost-cycle
        // convention and the no-failure baseline.
        let net = TypicalNetwork::new(LinkModel::from_availability(0.83, 0.9).unwrap());
        let mut model = crate::NetworkModel::from_typical(
            &net,
            net.schedule_eta_a(),
            ReportingInterval::REGULAR,
        )
        .unwrap();
        let outage = forced_outage_cycles(net.superframe, 0, 1);
        let dyn_e3 = LinkDynamics::steady(
            net.topology
                .link(NodeId::field(3), NodeId::Gateway)
                .unwrap(),
        )
        .with_outage(outage);
        model
            .override_link_dynamics(NodeId::field(3), NodeId::Gateway, dyn_e3)
            .unwrap();
        let eval = model.evaluate().unwrap();
        // Path 7 (index 6) crosses e3 as its last hop.
        let fine = eval.reports()[6].evaluation.reachability();
        let coarse = reachability_with_lost_cycles(&chain_model(2, 0.83), 1).unwrap();
        let baseline = chain_model(2, 0.83).evaluate().reachability();
        assert!(fine >= coarse - 1e-9, "fine {fine} vs coarse {coarse}");
        assert!(fine <= baseline + 1e-12);
    }

    #[test]
    fn permanent_failure_reroutes() {
        // In the typical network, removing (n9, n6) strands n9 unless we add
        // an alternative; removing (n6, n2) lets n6/n9 re-route only if a
        // backup link exists. Build a variant with a redundant link first.
        let link = LinkModel::from_availability(0.83, 0.9).unwrap();
        let net = TypicalNetwork::new(link);
        let mut topology = net.topology.clone();
        // Give n9 a backup neighbour n7.
        topology
            .connect(NodeId::field(9), NodeId::field(7), link)
            .unwrap();
        let rerouted =
            reroute_after_permanent_failure(&topology, NodeId::field(9), NodeId::field(6)).unwrap();
        assert!(rerouted
            .topology
            .link(NodeId::field(9), NodeId::field(6))
            .is_none());
        // n9 (device index 8) now routes via n7.
        assert!(rerouted.changed.contains(&8));
        let n9_path = &rerouted.paths[8];
        assert_eq!(n9_path.nodes()[1], NodeId::field(7));
        // Unaffected devices keep their routes.
        assert!(!rerouted.changed.contains(&0));
    }

    #[test]
    fn permanent_failure_without_alternative_is_an_error() {
        let link = LinkModel::from_availability(0.83, 0.9).unwrap();
        let net = TypicalNetwork::new(link);
        // n10's only neighbour is n7.
        assert!(reroute_after_permanent_failure(
            &net.topology,
            NodeId::field(10),
            NodeId::field(7)
        )
        .is_err());
    }

    #[test]
    fn schedules_can_be_rebuilt_after_rerouting() {
        let link = LinkModel::from_availability(0.83, 0.9).unwrap();
        let net = TypicalNetwork::new(link);
        let mut topology = net.topology.clone();
        topology
            .connect(NodeId::field(9), NodeId::field(7), link)
            .unwrap();
        let rerouted =
            reroute_after_permanent_failure(&topology, NodeId::field(9), NodeId::field(6)).unwrap();
        let order: Vec<usize> = (0..rerouted.paths.len()).collect();
        let schedule = Schedule::sequential(&rerouted.paths, &order).unwrap();
        schedule
            .validate(&rerouted.topology, &rerouted.paths)
            .unwrap();
    }
}
