//! The explicit path DTMC of Algorithm 1 (Section IV, Figs. 4-5).
//!
//! [`explicit_chain`] unrolls a [`PathModel`] into the absorbing DTMC the
//! paper draws: transient states are labelled by the age tuple
//! `(age_1, ..., age_n)` (the age of the message copy held at each node on
//! the path, `-` where no copy exists), goal states by `R<age>` and the
//! drop state by `Discard`.
//!
//! One representational note: the chain here starts from the true initial
//! state `(0,-,...)` — zero slots processed — so that a transmission
//! scheduled in frame slot 1 can serve the message born in the same cycle
//! (the paper's network evaluation needs this: path 1 under `eta_a`
//! transmits in slot 1 and still reaches the gateway in cycle 1). The
//! paper's Fig. 4 begins drawing at `(1,-,-)` because its example schedule
//! idles in slot 1, which makes the two states interchangeable.
//!
//! The chain is equivalent to the fast evaluator by construction; the test
//! suite checks the absorption probabilities agree to within solver
//! round-off on every model.

use crate::ir::PathProblem;
use crate::path::PathModel;
use std::collections::HashMap;
use whart_dtmc::{Dtmc, Pmf, Result as DtmcResult, StateId};

/// The unrolled chain with its distinguished states.
#[derive(Debug, Clone)]
pub struct ExplicitChain {
    /// The underlying labelled DTMC.
    pub dtmc: Dtmc,
    initial: StateId,
    goals: Vec<StateId>,
    discard: StateId,
}

impl ExplicitChain {
    /// The initial state `(0, -, ..., -)`.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The goal states, one per reporting cycle, in cycle order.
    pub fn goals(&self) -> &[StateId] {
        &self.goals
    }

    /// The discard state.
    pub fn discard(&self) -> StateId {
        self.discard
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.dtmc.len()
    }

    /// Number of transitions (absorbing self-loops included).
    pub fn transition_count(&self) -> usize {
        self.dtmc.transition_count()
    }

    /// The cycle probability function computed by absorbing-state analysis
    /// of the explicit chain — the slow, exact cross-check of
    /// [`PathModel::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates solver failures (cannot happen for chains produced by
    /// [`explicit_chain`], which always reach an absorbing state).
    pub fn cycle_probabilities(&self) -> DtmcResult<Pmf> {
        let absorption = self.dtmc.absorption()?;
        Ok(self
            .goals
            .iter()
            .map(|&g| absorption.probability(self.initial, g))
            .collect())
    }

    /// Solves the chain once for both absorption targets: the cycle
    /// probability function and the discard probability. This is the
    /// [`crate::ir::ExplicitSolver`] backend's workhorse.
    ///
    /// # Errors
    ///
    /// Propagates solver failures (cannot happen for chains produced by
    /// [`explicit_chain`], which always reach an absorbing state).
    pub fn solve(&self) -> DtmcResult<(Pmf, f64)> {
        let absorption = self.dtmc.absorption()?;
        let cycle_probabilities = self
            .goals
            .iter()
            .map(|&g| absorption.probability(self.initial, g))
            .collect();
        let discard = absorption.probability(self.initial, self.discard);
        Ok((cycle_probabilities, discard))
    }

    /// Graphviz rendering in the style of the paper's Figs. 4-5.
    pub fn to_dot(&self, name: &str) -> String {
        let options = whart_dtmc::dot::DotOptions {
            graph_name: name.to_string(),
            ..whart_dtmc::dot::DotOptions::default()
        };
        whart_dtmc::dot::to_dot(&self.dtmc, &options)
    }
}

/// Builds the explicit absorbing DTMC of a path model (Algorithm 1): the
/// convenience wrapper that lowers the model to its compiled
/// [`PathProblem`] first. See [`explicit_chain_of`].
pub fn explicit_chain(model: &PathModel) -> ExplicitChain {
    explicit_chain_of(&model.compile())
}

/// Builds the explicit absorbing DTMC of a compiled path problem
/// (Algorithm 1).
///
/// States are generated breadth-first along the time axis, so the resulting
/// indices read left-to-right like the paper's figures.
pub fn explicit_chain_of(problem: &PathProblem) -> ExplicitChain {
    let n = problem.hop_count();
    let f_up = problem.superframe().uplink_slots() as usize;
    let cycles = problem.interval().cycles() as usize;
    let total = f_up * cycles;
    let ttl = problem.ttl() as usize;
    let cycle_slots = u64::from(problem.superframe().cycle_slots());

    let mut by_slot: Vec<Option<usize>> = vec![None; f_up];
    for (hop, h) in problem.hops().iter().enumerate() {
        by_slot[h.frame_slot()] = Some(hop);
    }

    let mut builder = Dtmc::builder();
    // (slots_processed, position) -> state.
    let mut states: HashMap<(usize, usize), StateId> = HashMap::new();
    let initial = builder.add_state(age_label(0, 0, n));
    states.insert((0, 0), initial);
    let mut goals = Vec::with_capacity(cycles);
    let mut goal_by_cycle: HashMap<usize, StateId> = HashMap::new();
    let discard = builder.add_state("Discard");

    // Frontier of transient states at the current age. The chain keeps the
    // final-age states explicit (Fig. 4's `(7,-,-)`, `(7,7,-)`, `(7,7,7)`)
    // and routes them to `Discard` with probability one.
    let horizon = ttl.min(total);
    let mut frontier: Vec<(usize, StateId)> = vec![(0, initial)];
    for age in 0..horizon {
        if frontier.is_empty() {
            break;
        }
        let slot_in_frame = age % f_up;
        let cycle = age / f_up;
        let mut next_frontier: Vec<(usize, StateId)> = Vec::new();
        let mut next_states: HashMap<usize, StateId> = HashMap::new();
        for (position, state) in frontier {
            let transmitting_hop = by_slot[slot_in_frame].filter(|&h| h == position);
            match transmitting_hop {
                Some(hop) => {
                    let abs_slot = cycle as u64 * cycle_slots + slot_in_frame as u64;
                    let ps = problem.hops()[hop].dynamics().up_probability(abs_slot);
                    // Success branch.
                    if hop + 1 == n {
                        let goal = *goal_by_cycle
                            .entry(cycle)
                            .or_insert_with(|| builder.add_state(format!("R{}", age + 1)));
                        builder
                            .add_transition(state, goal, ps)
                            .expect("valid probability");
                    } else {
                        let target =
                            next_transient(&mut builder, &mut next_states, age + 1, hop + 1, n);
                        builder
                            .add_transition(state, target, ps)
                            .expect("valid probability");
                    }
                    // Failure branch.
                    let target =
                        next_transient(&mut builder, &mut next_states, age + 1, position, n);
                    builder
                        .add_transition(state, target, 1.0 - ps)
                        .expect("valid probability");
                }
                None => {
                    let target =
                        next_transient(&mut builder, &mut next_states, age + 1, position, n);
                    builder
                        .add_transition(state, target, 1.0)
                        .expect("valid probability");
                }
            }
        }
        for (position, state) in next_states {
            states.insert((age + 1, position), state);
            next_frontier.push((position, state));
        }
        frontier = next_frontier;
    }
    // The TTL has expired (or the interval ended): remaining states drop
    // their message.
    for (_, state) in frontier {
        builder
            .add_transition(state, discard, 1.0)
            .expect("valid probability");
    }

    // Collect goals in cycle order; cycles that cannot be reached (e.g. when
    // the TTL expires early) still get a placeholder absorbing state so the
    // cycle-probability pmf has the right length. Labels use the arrival
    // slot a0 of that cycle, matching the reachable goals.
    let a0 = problem.arrival_slot_number() as usize;
    for cycle in 0..cycles {
        let goal = *goal_by_cycle
            .entry(cycle)
            .or_insert_with(|| builder.add_state(format!("R{}", cycle * f_up + a0)));
        goals.push(goal);
    }
    for &goal in &goals {
        builder.make_absorbing(goal).expect("goal exists");
    }
    builder.make_absorbing(discard).expect("discard exists");

    let dtmc = builder
        .build()
        .expect("rows are stochastic by construction");
    ExplicitChain {
        dtmc,
        initial,
        goals,
        discard,
    }
}

/// Fetches or creates the transient successor `(age, position)`.
fn next_transient(
    builder: &mut whart_dtmc::DtmcBuilder,
    next_states: &mut HashMap<usize, StateId>,
    age: usize,
    position: usize,
    n: usize,
) -> StateId {
    *next_states
        .entry(position)
        .or_insert_with(|| builder.add_state(age_label(age, position, n)))
}

/// The paper's age-tuple label: positions `0..=position` hold a copy of age
/// `age`, the rest are `-`.
fn age_label(age: usize, position: usize, n: usize) -> String {
    let mut parts = Vec::with_capacity(n);
    for i in 0..n {
        if i <= position {
            parts.push(age.to_string());
        } else {
            parts.push("-".to_string());
        }
    }
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::LinkDynamics;
    use whart_channel::LinkModel;
    use whart_net::{ReportingInterval, Superframe};

    fn example_model(pi: f64, is: u32) -> PathModel {
        let steady = |pi| LinkDynamics::steady(LinkModel::from_availability(pi, 0.9).unwrap());
        let mut b = PathModel::builder();
        b.add_hop(steady(pi), 2)
            .add_hop(steady(pi), 5)
            .add_hop(steady(pi), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(is).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn fig4_structure() {
        // Is = 1: the paper's Fig. 4 shows ages 1..7 at position 0 (7 states),
        // 3..7 at position 1 (5), 6..7 at position 2 (2), plus R7 and
        // Discard: 16 states. Our chain adds the pre-slot-1 state (0,-,-).
        let chain = explicit_chain(&example_model(0.75, 1));
        assert_eq!(chain.state_count(), 17);
        assert!(chain.dtmc.state_by_label("(0,-,-)").is_some());
        assert!(chain.dtmc.state_by_label("(3,3,-)").is_some());
        assert!(chain.dtmc.state_by_label("(6,6,6)").is_some());
        assert!(chain.dtmc.state_by_label("R7").is_some());
        assert!(chain.dtmc.state_by_label("Discard").is_some());
        // No copy ever reaches position 1 before the slot-3 transmission.
        assert!(chain.dtmc.state_by_label("(2,2,-)").is_none());
        assert_eq!(chain.goals().len(), 1);
    }

    #[test]
    fn fig5_structure() {
        // Is = 2 doubles the time axis and adds R14.
        let chain = explicit_chain(&example_model(0.75, 2));
        assert!(chain.dtmc.state_by_label("R7").is_some());
        assert!(chain.dtmc.state_by_label("R14").is_some());
        assert!(chain.dtmc.state_by_label("(8,-,-)").is_some());
        assert!(chain.dtmc.state_by_label("(13,13,-)").is_some());
        assert_eq!(chain.goals().len(), 2);
    }

    #[test]
    fn absorption_matches_fast_evaluator() {
        for &pi in &[0.693, 0.83, 0.948] {
            for is in 1..=4 {
                let model = example_model(pi, is);
                let fast = model.evaluate();
                let chain = explicit_chain(&model);
                let slow = chain.cycle_probabilities().unwrap();
                for i in 0..is as usize {
                    assert!(
                        (fast.cycle_probabilities().get(i) - slow.get(i)).abs() < 1e-12,
                        "pi={pi} is={is} cycle={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn discard_probability_matches() {
        let model = example_model(0.75, 4);
        let chain = explicit_chain(&model);
        let absorption = chain.dtmc.absorption().unwrap();
        let p_discard = absorption.probability(chain.initial(), chain.discard());
        assert!((p_discard - model.evaluate().discard_probability()).abs() < 1e-12);
    }

    #[test]
    fn size_is_linear_in_interval() {
        // O(Is * F_up * n): the state count is exactly affine in Is, since
        // each extra cycle adds the same band of (age, position) states.
        let s1 = explicit_chain(&example_model(0.75, 1)).state_count();
        let s2 = explicit_chain(&example_model(0.75, 2)).state_count();
        let s4 = explicit_chain(&example_model(0.75, 4)).state_count();
        assert!(s2 > s1 && s4 > s2);
        assert_eq!(s4 - s2, 2 * (s2 - s1));
    }

    #[test]
    fn dot_export_mentions_key_states() {
        let chain = explicit_chain(&example_model(0.75, 1));
        let dot = chain.to_dot("fig4");
        assert!(dot.contains("digraph fig4"));
        assert!(dot.contains("R7"));
        assert!(dot.contains("Discard"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn ttl_shortens_the_chain() {
        let steady = LinkDynamics::steady(LinkModel::from_availability(0.75, 0.9).unwrap());
        let mut b = PathModel::builder();
        b.add_hop(steady.clone(), 2)
            .add_hop(steady.clone(), 5)
            .add_hop(steady, 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap())
            .ttl(7);
        let model = b.build().unwrap();
        let chain = explicit_chain(&model);
        let slow = chain.cycle_probabilities().unwrap();
        let fast = model.evaluate();
        for i in 0..4 {
            assert!((slow.get(i) - fast.cycle_probabilities().get(i)).abs() < 1e-12);
        }
        // Goals for unreachable cycles exist but carry zero probability.
        assert_eq!(slow.get(1), 0.0);
    }
}
