//! `whart-stress`: an HTTP load harness for `whart serve`.
//!
//! Two generation modes drive the server:
//!
//! - **Open loop** (`rate: Some(r)`): arrivals are scheduled on a fixed
//!   grid at `r` requests/second, independent of how fast the server
//!   answers. Latency is measured from the *scheduled* arrival time, not
//!   the send time, so a stalled server inflates the tail instead of
//!   silently thinning the load (coordinated-omission correction).
//! - **Closed loop** (`rate: None`): every connection issues requests
//!   back-to-back as fast as responses return, optionally pipelined.
//!   This measures the ceiling — and is how the keep-alive vs
//!   `Connection: close` speedup is established.
//!
//! Latencies land in a `whart-obs` log2 histogram; [`StressOutcome`]
//! carries the snapshot plus request/error counts. `report` turns
//! outcomes into `BENCH_serve.json` lines and gates them against a
//! committed baseline, mirroring `bench-engine --check`.
//!
//! The generator is itself instrumented with `whart-prof` activity
//! frames (`stress.open_loop` / `stress.closed_loop` on named
//! `whart-stress-{i}` worker threads): [`run_with_profiler`] under a
//! live capture shows where the *client* spends its time, which is how
//! you prove a disappointing throughput number is the server's fault
//! and not the harness saturating first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod report;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use whart_obs::{HistogramSnapshot, Metrics};
use whart_prof::Profiler;

use crate::client::{HttpClient, HttpResponse};

/// One load-generation run against a single endpoint.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Server address, `ip:port`.
    pub addr: String,
    /// Request target, e.g. `/v1/analyze`.
    pub endpoint: String,
    /// Request method.
    pub method: String,
    /// Request body sent with every request.
    pub body: Vec<u8>,
    /// Target arrival rate in requests/second (open loop), or `None`
    /// for closed-loop maximum throughput.
    pub rate: Option<f64>,
    /// How long to generate load for.
    pub duration: Duration,
    /// Number of concurrent connections (worker threads).
    pub connections: usize,
    /// Reuse connections across requests (HTTP keep-alive).
    pub keep_alive: bool,
    /// Closed-loop pipelining depth per connection: how many requests
    /// may be in flight on one connection before reading a response.
    /// Only effective with `keep_alive`; open-loop mode ignores it.
    pub pipeline: usize,
}

impl StressConfig {
    /// A closed-loop keep-alive config with defaults matching the CLI.
    pub fn closed_loop(addr: impl Into<String>, endpoint: impl Into<String>) -> StressConfig {
        StressConfig {
            addr: addr.into(),
            endpoint: endpoint.into(),
            method: "GET".to_string(),
            body: Vec::new(),
            rate: None,
            duration: Duration::from_secs(10),
            connections: 4,
            keep_alive: true,
            pipeline: 32,
        }
    }
}

/// How many error correlation ids a run retains: enough to look the
/// failures up in the server's request log and flight recorder, small
/// enough to print.
pub const MAX_ERROR_IDS: usize = 16;

/// The slowest completed request of a run, by end-to-end latency.
#[derive(Debug, Clone)]
pub struct SlowestRequest {
    /// Its measured latency.
    pub latency: Duration,
    /// Its `X-Request-Id` (`-` when the server sent none) — the handle
    /// for `GET /v1/debug/requests/<id>` on the server.
    pub id: String,
}

/// Aggregated result of one run.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// Per-request latency distribution, nanoseconds.
    pub latency: HistogramSnapshot,
    /// Requests that completed with a non-5xx response.
    pub requests: u64,
    /// Requests that failed (transport error or 5xx status).
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Connections the run used.
    pub connections: usize,
    /// `X-Request-Id`s of failed (5xx) responses, first
    /// [`MAX_ERROR_IDS`] seen. Transport errors carry no id.
    pub error_ids: Vec<String>,
    /// The slowest completed request, with its correlation id.
    pub slowest: Option<SlowestRequest>,
}

impl StressOutcome {
    /// Successful requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Errors as a fraction of all attempted requests (0 when idle).
    pub fn error_rate(&self) -> f64 {
        let attempted = self.requests + self.errors;
        if attempted > 0 {
            self.errors as f64 / attempted as f64
        } else {
            0.0
        }
    }
}

/// Shared per-run counters the workers update.
struct Counters {
    metrics: Metrics,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Fast max-latency watermark so the notes mutex is only taken on a
    /// new slowest request or an error, never on the hot path.
    slowest_ns: AtomicU64,
    notes: Mutex<Notes>,
}

/// Correlation-id bookkeeping, updated off the hot path.
#[derive(Default)]
struct Notes {
    error_ids: Vec<String>,
    slowest: Option<SlowestRequest>,
}

const LATENCY_HISTOGRAM: &str = "stress.latency_ns";

/// Runs one load generation pass and aggregates the outcome.
///
/// # Errors
///
/// Invalid configuration (zero connections, non-positive rate), or every
/// single request failing — which almost always means the address is
/// wrong or the server is down, and deserves a hard error rather than a
/// 100% error-rate report.
pub fn run(config: &StressConfig) -> Result<StressOutcome, String> {
    run_with_profiler(config, &Profiler::disabled())
}

/// [`run`], with the generator's own hot loops published to `profiler`
/// as activity frames. Each worker thread is named `whart-stress-{i}`
/// and spends its life inside a `stress.open_loop` or
/// `stress.closed_loop` frame, so a capture taken during the run
/// attributes every sampled tick to the generation mode that burned it.
/// With a disabled profiler this is exactly [`run`].
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_profiler(
    config: &StressConfig,
    profiler: &Profiler,
) -> Result<StressOutcome, String> {
    if config.connections == 0 {
        return Err("connections must be at least 1".to_string());
    }
    if let Some(rate) = config.rate {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("rate must be a positive number, got {rate}"));
        }
    }
    if config.pipeline == 0 {
        return Err("pipeline depth must be at least 1".to_string());
    }

    let counters = Arc::new(Counters {
        metrics: Metrics::new(),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        slowest_ns: AtomicU64::new(0),
        notes: Mutex::new(Notes::default()),
    });
    // Interned once, outside the workers: Frame is Copy and enter() on
    // the hot path is lock-free.
    let mode_frame = match config.rate {
        Some(_) => profiler.frame("stress.open_loop"),
        None => profiler.frame("stress.closed_loop"),
    };
    let start = Instant::now();
    let workers: Vec<_> = (0..config.connections)
        .map(|worker| {
            let config = config.clone();
            let counters = Arc::clone(&counters);
            let profiler = profiler.clone();
            std::thread::Builder::new()
                .name(format!("whart-stress-{worker}"))
                .spawn(move || {
                    let _mode = profiler.enter(mode_frame);
                    match config.rate {
                        Some(rate) => open_loop_worker(&config, rate, worker, start, &counters),
                        None => closed_loop_worker(&config, start, &counters),
                    }
                })
                .expect("spawn stress worker thread")
        })
        .collect();
    for worker in workers {
        worker
            .join()
            .map_err(|_| "stress worker panicked".to_string())?;
    }
    let elapsed = start.elapsed();

    let requests = counters.requests.load(Ordering::Relaxed);
    let errors = counters.errors.load(Ordering::Relaxed);
    if requests == 0 {
        return Err(format!(
            "no request against {} succeeded ({errors} errors) — is the server up?",
            config.addr
        ));
    }
    let snapshot = counters.metrics.snapshot();
    let latency = snapshot
        .histogram(LATENCY_HISTOGRAM)
        .cloned()
        .ok_or_else(|| "latency histogram missing from metrics snapshot".to_string())?;
    let notes = std::mem::take(&mut *counters.notes.lock().map_err(|_| "notes poisoned")?);
    Ok(StressOutcome {
        latency,
        requests,
        errors,
        duration: elapsed,
        connections: config.connections,
        error_ids: notes.error_ids,
        slowest: notes.slowest,
    })
}

/// Records one completed exchange: non-5xx statuses count as successes.
/// Tracks the slowest request's correlation id and the ids of failed
/// responses so a run's outliers can be looked up on the server.
fn record(counters: &Counters, response: &HttpResponse, latency: Duration) {
    let id = || response.request_id.clone().unwrap_or_else(|| "-".into());
    if response.status < 500 {
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos() as u64;
        counters.metrics.histogram(LATENCY_HISTOGRAM).record(ns);
        if ns > counters.slowest_ns.fetch_max(ns, Ordering::Relaxed) {
            let mut notes = counters.notes.lock().expect("stress notes");
            let is_new_max = match &notes.slowest {
                Some(slowest) => latency > slowest.latency,
                None => true,
            };
            if is_new_max {
                notes.slowest = Some(SlowestRequest { latency, id: id() });
            }
        }
    } else {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        let mut notes = counters.notes.lock().expect("stress notes");
        if notes.error_ids.len() < MAX_ERROR_IDS {
            notes.error_ids.push(id());
        }
    }
}

/// Open loop: worker `w` owns arrivals `w, w + C, w + 2C, ...` on the
/// global schedule `start + i / rate`. Requests are issued sequentially
/// per connection; latency runs from the scheduled arrival so queueing
/// behind a slow server shows up in the measurement.
fn open_loop_worker(
    config: &StressConfig,
    rate: f64,
    worker: usize,
    start: Instant,
    counters: &Counters,
) {
    let total = (rate * config.duration.as_secs_f64()).floor() as u64;
    let mut client = HttpClient::new(config.addr.clone(), config.keep_alive);
    let mut arrival = worker as u64;
    while arrival < total {
        let scheduled = start + Duration::from_secs_f64(arrival as f64 / rate);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        match client.request(&config.method, &config.endpoint, &config.body) {
            Ok(response) => record(counters, &response, scheduled.elapsed()),
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        arrival += config.connections as u64;
    }
}

/// Closed loop: issue requests back-to-back until the deadline.
///
/// With keep-alive and `pipeline > 1` the worker runs in batches: one
/// buffered write of `pipeline` requests (a single syscall — see
/// [`HttpClient::send_batch`]), then `pipeline` reads. Each response's
/// latency runs from the batch send instant, which over-counts early
/// responses slightly and is exactly right for the last — conservative
/// for a throughput-ceiling measurement. Without keep-alive (or at
/// depth 1) requests go one at a time.
fn closed_loop_worker(config: &StressConfig, start: Instant, counters: &Counters) {
    let deadline = start + config.duration;
    let mut client = HttpClient::new(config.addr.clone(), config.keep_alive);
    let depth = if config.keep_alive {
        config.pipeline
    } else {
        1
    };
    while Instant::now() < deadline {
        let sent = Instant::now();
        let dispatched = if depth == 1 {
            client
                .send(&config.method, &config.endpoint, &config.body)
                .map(|()| 1)
        } else {
            client
                .send_batch(&config.method, &config.endpoint, &config.body, depth)
                .map(|()| depth)
        };
        let dispatched = match dispatched {
            Ok(n) => n,
            Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                // Back off instead of hot-spinning against a dead server.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let mut pending = dispatched;
        while pending > 0 {
            pending -= 1;
            match client.recv() {
                Ok(response) => record(counters, &response, sent.elapsed()),
                Err(_) => {
                    // The rest of the pipeline is lost with the connection.
                    counters
                        .errors
                        .fetch_add(1 + pending as u64, Ordering::Relaxed);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(status: u16, request_id: Option<&str>) -> HttpResponse {
        HttpResponse {
            status,
            body: Vec::new(),
            close: false,
            request_id: request_id.map(String::from),
        }
    }

    #[test]
    fn record_tracks_error_ids_and_the_slowest_request() {
        let counters = Counters {
            metrics: Metrics::new(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            slowest_ns: AtomicU64::new(0),
            notes: Mutex::new(Notes::default()),
        };
        record(
            &counters,
            &response(200, Some("ok-1")),
            Duration::from_millis(2),
        );
        record(
            &counters,
            &response(200, Some("ok-2")),
            Duration::from_millis(9),
        );
        record(
            &counters,
            &response(200, Some("ok-3")),
            Duration::from_millis(4),
        );
        record(
            &counters,
            &response(500, Some("boom-1")),
            Duration::from_millis(1),
        );
        record(&counters, &response(503, None), Duration::from_millis(1));
        for i in 0..(2 * MAX_ERROR_IDS) {
            record(
                &counters,
                &response(500, Some(&format!("flood-{i}"))),
                Duration::from_millis(1),
            );
        }

        assert_eq!(counters.requests.load(Ordering::Relaxed), 3);
        assert_eq!(
            counters.errors.load(Ordering::Relaxed),
            2 + 2 * MAX_ERROR_IDS as u64
        );
        let notes = counters.notes.lock().unwrap();
        let slowest = notes.slowest.as_ref().expect("slowest recorded");
        assert_eq!(slowest.id, "ok-2");
        assert_eq!(slowest.latency, Duration::from_millis(9));
        // Errors keep their ids (transport-less `-` for missing ones),
        // capped at MAX_ERROR_IDS.
        assert_eq!(notes.error_ids.len(), MAX_ERROR_IDS);
        assert_eq!(notes.error_ids[0], "boom-1");
        assert_eq!(notes.error_ids[1], "-");
        assert_eq!(notes.error_ids[2], "flood-0");
    }

    #[test]
    fn profiled_run_attributes_worker_time_to_stress_frames() {
        use std::io::{Read as _, Write as _};
        // A minimal keep-alive server: answer every request head on one
        // connection until the client hangs up.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let mut pending: Vec<u8> = Vec::new();
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => pending.extend_from_slice(&buf[..n]),
                }
                while let Some(end) = pending.windows(4).position(|w| w == b"\r\n\r\n") {
                    pending.drain(..end + 4);
                    let response =
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";
                    if stream.write_all(response).is_err() {
                        return;
                    }
                }
            }
        });

        let profiler = Profiler::new();
        let capture = profiler.start_capture(4000).expect("enabled profiler");
        let config = StressConfig {
            addr,
            endpoint: "/x".to_string(),
            method: "GET".to_string(),
            body: Vec::new(),
            rate: None,
            duration: Duration::from_millis(300),
            connections: 1,
            keep_alive: true,
            pipeline: 1,
        };
        let outcome = run_with_profiler(&config, &profiler).unwrap();
        let profile = capture.stop();
        server.join().unwrap();

        assert!(outcome.requests > 0, "{outcome:?}");
        // The worker lives inside the mode frame on a named thread, so
        // a 300 ms capture at 4 kHz cannot miss it.
        assert!(
            profile.frame_total("stress.closed_loop") > 0,
            "{}",
            profile.to_folded()
        );
        assert!(profile.thread_samples("whart-stress-") > 0);
        // The plain entry point stays unprofiled: same run, inert handle.
        let disabled = Profiler::disabled();
        assert!(disabled.start_capture(4000).is_none());
    }
}
