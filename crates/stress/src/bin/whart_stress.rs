//! `whart-stress` — HTTP load generator and SLO gate for `whart serve`.
//!
//! ```text
//! whart-stress --addr 127.0.0.1:8080 [--endpoint /v1/analyze]
//!              [--method POST] [--body-file spec.json]
//!              [--rate R] [--duration D] [--connections C]
//!              [--pipeline P] [--warmup W] [--compare-close]
//!              [--out BENCH_serve.json] [--check BENCH_serve.json]
//!              [--tolerance 0.25] [--profile client.folded]
//! ```
//!
//! With `--rate R` the run is open loop at R requests/second; without
//! it, closed loop at maximum throughput. `--compare-close` appends two
//! short closed-loop runs (keep-alive and `Connection: close`) plus the
//! keep-alive speedup row. `--check` gates the fresh run against a
//! committed baseline and exits nonzero on violation, exactly like
//! `bench-engine --check`. `--profile` samples the *generator's own*
//! worker threads for the whole invocation and writes a flamegraph
//! collapsed profile (or JSON, with a `.json` path) — the evidence that
//! a flat throughput number saturated the server and not the client.

use std::process::ExitCode;
use std::time::Duration;

use whart_prof::Profiler;
use whart_stress::report;
use whart_stress::{run_with_profiler, StressConfig, StressOutcome};

const USAGE: &str = "usage: whart-stress --addr HOST:PORT [--endpoint /v1/analyze] \
[--method POST] [--body-file FILE] [--rate R] [--duration SECONDS] \
[--connections N] [--pipeline N] [--warmup SECONDS] [--compare-close] \
[--out FILE] [--check BASELINE] [--tolerance 0.25] [--profile FILE]";

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} expects a number, got '{v}'")),
    }
}

fn positive_seconds(args: &[String], flag: &str, default: f64) -> Result<Duration, String> {
    let seconds: f64 = parse_flag(args, flag, default)?;
    if !seconds.is_finite() || seconds <= 0.0 {
        return Err(format!(
            "{flag} expects a positive number of seconds, got {seconds}"
        ));
    }
    Ok(Duration::from_secs_f64(seconds))
}

/// Runs the harness; `Ok(true)` = pass, `Ok(false)` = SLO violations.
/// Prints one run's correlation-id notes: the slowest request and any
/// failed requests, by `X-Request-Id` — the handles for looking them up
/// in the server's request log and `GET /v1/debug/requests/<id>`.
fn report_request_ids(label: &str, outcome: &StressOutcome) {
    if let Some(slowest) = &outcome.slowest {
        eprintln!(
            "{label}: slowest request {:.3} ms (X-Request-Id {})",
            slowest.latency.as_secs_f64() * 1e3,
            slowest.id
        );
    }
    if !outcome.error_ids.is_empty() {
        eprintln!(
            "{label}: {} error(s); X-Request-Id of the first {}: {}",
            outcome.errors,
            outcome.error_ids.len(),
            outcome.error_ids.join(" ")
        );
    }
}

fn run_cli(args: &[String]) -> Result<bool, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(true);
    }
    let addr = flag_value(args, "--addr")
        .ok_or_else(|| format!("--addr is required\n{USAGE}"))?
        .to_string();
    let endpoint = flag_value(args, "--endpoint")
        .unwrap_or("/v1/analyze")
        .to_string();
    let method = flag_value(args, "--method").unwrap_or("POST").to_string();
    let body = match flag_value(args, "--body-file") {
        Some(path) => {
            std::fs::read(path).map_err(|e| format!("reading --body-file {path}: {e}"))?
        }
        None => Vec::new(),
    };
    let rate = match flag_value(args, "--rate") {
        Some(v) => Some(
            v.parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 0.0)
                .ok_or_else(|| format!("--rate expects a positive number, got '{v}'"))?,
        ),
        None => None,
    };
    let duration = positive_seconds(args, "--duration", 10.0)?;
    let connections: usize = parse_flag(args, "--connections", 4)?;
    let pipeline: usize = parse_flag(args, "--pipeline", 32)?;
    let warmup = match flag_value(args, "--warmup") {
        Some(_) => Some(positive_seconds(args, "--warmup", 0.0)?),
        None => None,
    };
    let compare_close = args.iter().any(|a| a == "--compare-close");
    let out = flag_value(args, "--out");
    let check = flag_value(args, "--check");
    let tolerance: f64 = parse_flag(args, "--tolerance", 0.25)?;
    let profile_path = flag_value(args, "--profile");
    if let (Some(out), Some(check)) = (out, check) {
        if out == check {
            return Err(format!(
                "--out and --check both name '{out}': refusing to overwrite the \
                 baseline with the run being checked against it"
            ));
        }
    }

    let config = StressConfig {
        addr,
        endpoint,
        method,
        body,
        rate,
        duration,
        connections,
        keep_alive: true,
        pipeline,
    };

    // Self-profiling covers the whole invocation (warmup, main run and
    // the --compare-close ceilings) so the written profile attributes
    // every worker's time across all the passes.
    let profiler = match profile_path {
        Some(_) => Profiler::new(),
        None => Profiler::disabled(),
    };
    let capture = profiler.start_capture(whart_prof::DEFAULT_HZ);

    if let Some(warmup) = warmup {
        // Untimed closed-loop pass: fills caches and gets past the
        // first-request JIT-like costs (allocator warm-up, page faults).
        eprintln!("warming up for {:.1}s ...", warmup.as_secs_f64());
        run_with_profiler(
            &StressConfig {
                rate: None,
                duration: warmup,
                ..config.clone()
            },
            &profiler,
        )?;
    }

    let mut lines = String::new();
    eprintln!(
        "running {} for {:.1}s over {} connection(s) ...",
        match config.rate {
            Some(r) => format!("open loop at {r} req/s"),
            None => "closed loop at max rate".to_string(),
        },
        config.duration.as_secs_f64(),
        config.connections,
    );
    let main_outcome = run_with_profiler(&config, &profiler)?;
    let id = report::row_id(&config.endpoint, config.keep_alive, config.rate);
    report_request_ids(&id, &main_outcome);
    lines.push_str(&report::stat_line(&id, &main_outcome));
    lines.push('\n');

    if compare_close {
        // Short closed-loop ceiling runs in both connection modes; the
        // ratio of their throughputs is the keep-alive speedup row.
        let ceiling = |keep_alive: bool| {
            run_with_profiler(
                &StressConfig {
                    rate: None,
                    duration: Duration::from_secs(3),
                    keep_alive,
                    ..config.clone()
                },
                &profiler,
            )
        };
        eprintln!("comparing keep-alive vs Connection: close at max rate ...");
        let keepalive_max = ceiling(true)?;
        let close_max = ceiling(false)?;
        let ka_id = report::row_id(&config.endpoint, true, None);
        let close_id = report::row_id(&config.endpoint, false, None);
        report_request_ids(&ka_id, &keepalive_max);
        report_request_ids(&close_id, &close_max);
        lines.push_str(&report::stat_line(&ka_id, &keepalive_max));
        lines.push('\n');
        lines.push_str(&report::stat_line(&close_id, &close_max));
        lines.push('\n');
        lines.push_str(&report::speedup_line(
            &config.endpoint,
            &keepalive_max,
            &close_max,
        ));
        lines.push('\n');
        eprintln!(
            "keep-alive {:.0} rps vs close {:.0} rps ({:.1}x)",
            keepalive_max.throughput_rps(),
            close_max.throughput_rps(),
            keepalive_max.throughput_rps() / close_max.throughput_rps().max(1e-9),
        );
    }

    match out {
        Some(path) => {
            std::fs::write(path, &lines).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{lines}"),
    }

    if let (Some(path), Some(capture)) = (profile_path, capture) {
        let profile = capture.stop();
        let text = if path.ends_with(".json") {
            let mut text = profile.to_json().to_pretty();
            text.push('\n');
            text
        } else {
            profile.to_folded()
        };
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote client profile to {path} ({} samples)",
            profile.total_samples()
        );
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("reading baseline {baseline_path}: {e}"))?;
        let failures = report::check_slo(&baseline, &lines, tolerance)?;
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("SLO violation: {failure}");
            }
            return Ok(false);
        }
        eprintln!("SLO check passed against {baseline_path}");
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("whart-stress: {message}");
            ExitCode::FAILURE
        }
    }
}
