//! A minimal HTTP/1.1 benchmark client over raw `TcpStream`s.
//!
//! The client speaks exactly what `whart serve` emits: status line +
//! headers, `Content-Length` or chunked bodies, keep-alive reuse, and
//! request pipelining (several requests written before the first
//! response is read — the throughput lever persistent connections
//! exist for). It deliberately does nothing else: no TLS, no
//! redirects, no compression.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One decoded HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Decoded body (chunked bodies are reassembled).
    pub body: Vec<u8>,
    /// Whether the server announced it will close the connection.
    pub close: bool,
    /// The server's `X-Request-Id` correlation id, when present — the
    /// handle for looking a request up in the server's request log and
    /// flight recorder after the run.
    pub request_id: Option<String>,
}

/// A benchmark connection to one server address.
pub struct HttpClient {
    addr: String,
    keep_alive: bool,
    read_timeout: Duration,
    stream: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr` (`ip:port`). With `keep_alive` the
    /// connection is reused across requests; without it every request
    /// opens a fresh connection and asks the server to close.
    pub fn new(addr: impl Into<String>, keep_alive: bool) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            keep_alive,
            read_timeout: Duration::from_secs(30),
            stream: None,
        }
    }

    /// Drops the current connection (the next request reconnects).
    pub fn reset(&mut self) {
        self.stream = None;
    }

    fn connection(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            self.stream = Some(BufReader::new(stream));
        }
        Ok(self.stream.as_mut().expect("connection just ensured"))
    }

    /// Writes one request without reading its response (pipelining).
    ///
    /// # Errors
    ///
    /// Connect or write failure; the connection is dropped so the next
    /// call reconnects.
    pub fn send(&mut self, method: &str, target: &str, body: &[u8]) -> Result<(), String> {
        let connection_header = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: stress\r\nContent-Length: {}\r\nConnection: {connection_header}\r\n\r\n",
            body.len()
        );
        let result = (|| {
            let reader = self.connection()?;
            let stream = reader.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            Ok::<(), std::io::Error>(())
        })();
        result.map_err(|e| {
            self.reset();
            format!("send to {}: {e}", self.addr)
        })
    }

    /// Writes `count` copies of one request in a single buffer and a
    /// single syscall — the batch variant of [`HttpClient::send`] the
    /// closed-loop generator uses to fill a pipeline without paying
    /// per-request write overhead.
    ///
    /// # Errors
    ///
    /// Connect or write failure; the connection is dropped so the next
    /// call reconnects.
    pub fn send_batch(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
        count: usize,
    ) -> Result<(), String> {
        let connection_header = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: stress\r\nContent-Length: {}\r\nConnection: {connection_header}\r\n\r\n",
            body.len()
        );
        let mut buffer = Vec::with_capacity((head.len() + body.len()) * count);
        for _ in 0..count {
            buffer.extend_from_slice(head.as_bytes());
            buffer.extend_from_slice(body);
        }
        let result = (|| {
            let reader = self.connection()?;
            reader.get_mut().write_all(&buffer)?;
            Ok::<(), std::io::Error>(())
        })();
        result.map_err(|e| {
            self.reset();
            format!("send to {}: {e}", self.addr)
        })
    }

    /// Reads one framed response off the connection.
    ///
    /// # Errors
    ///
    /// Read or framing failure; the connection is dropped.
    pub fn recv(&mut self) -> Result<HttpResponse, String> {
        let addr = self.addr.clone();
        let result = match self.stream.as_mut() {
            Some(reader) => read_response(reader).map_err(|e| format!("recv from {addr}: {e}")),
            None => Err(format!("recv from {addr}: not connected")),
        };
        match &result {
            Ok(response) if response.close || !self.keep_alive => self.reset(),
            Ok(_) => {}
            Err(_) => self.reset(),
        }
        result
    }

    /// One request/response exchange. On a reused connection that turns
    /// out to be stale (the server closed it while idle), retries once
    /// on a fresh connection.
    ///
    /// # Errors
    ///
    /// Connect, write, read, or framing failure after the retry.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<HttpResponse, String> {
        let reused = self.stream.is_some();
        self.send(method, target, body)?;
        match self.recv() {
            Ok(response) => Ok(response),
            Err(first) if reused => {
                // A stale keep-alive connection fails on the read of the
                // first reuse; one clean retry is standard client
                // behavior, not error masking.
                self.send(method, target, body)
                    .map_err(|e| format!("{first}; retry: {e}"))?;
                self.recv().map_err(|e| format!("{first}; retry: {e}"))
            }
            Err(e) => Err(e),
        }
    }
}

fn io_invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    Ok(line.trim_end().to_string())
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let status_line = read_line(reader)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io_invalid(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    let mut request_id = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io_invalid(format!("bad header line {line:?}")));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| io_invalid(format!("bad content-length {value:?}")))?,
                );
            }
            "transfer-encoding" => chunked = value.eq_ignore_ascii_case("chunked"),
            "connection" => close = value.eq_ignore_ascii_case("close"),
            "x-request-id" => request_id = Some(value.to_string()),
            _ => {}
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| io_invalid(format!("bad chunk size {size_line:?}")))?;
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else {
        let length = content_length.unwrap_or(0);
        body.resize(length, 0);
        reader.read_exact(&mut body)?;
    }
    Ok(HttpResponse {
        status,
        body,
        close,
        request_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot server thread answering `responses` verbatim after
    /// consuming one head per response.
    fn canned_server(responses: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let mut pending = Vec::new();
            for response in responses {
                // Consume bytes until one full request head arrived.
                while !pending.windows(4).any(|w| w == b"\r\n\r\n") {
                    let n = stream.read(&mut buf).unwrap();
                    pending.extend_from_slice(&buf[..n]);
                }
                let end = pending.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
                pending.drain(..end);
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn decodes_content_length_and_chunked_responses() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nConnection: keep-alive\r\n\
             X-Request-Id: 00ab12cd-000042\r\n\r\nhello"
                .into(),
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
             3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n"
                .into(),
        ]);
        let mut client = HttpClient::new(addr, true);
        let first = client.request("GET", "/a", b"").unwrap();
        assert_eq!(
            (first.status, first.body.as_slice()),
            (200, b"hello".as_slice())
        );
        assert!(!first.close);
        assert_eq!(first.request_id.as_deref(), Some("00ab12cd-000042"));
        let second = client.request("GET", "/b", b"").unwrap();
        assert_eq!(second.body, b"abcde");
        assert!(second.close);
        assert_eq!(second.request_id, None);
        assert!(client.stream.is_none(), "close response drops the stream");
        server.join().unwrap();
    }

    #[test]
    fn pipelined_sends_read_back_in_order() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\n1".into(),
            "HTTP/1.1 200 OK\r\nContent-Length: 1\r\nConnection: keep-alive\r\n\r\n2".into(),
        ]);
        let mut client = HttpClient::new(addr, true);
        client.send("GET", "/a", b"").unwrap();
        client.send("GET", "/b", b"").unwrap();
        assert_eq!(client.recv().unwrap().body, b"1");
        assert_eq!(client.recv().unwrap().body, b"2");
        server.join().unwrap();
    }
}
