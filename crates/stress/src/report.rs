//! `BENCH_serve.json` emission and the SLO gate.
//!
//! One compact JSON object per line, mirroring `BENCH_engine.json`:
//!
//! * **stat rows** — one per `(endpoint, mode, rate)` group:
//!   `{"id":"serve/v1_analyze/keepalive/rate500","mean_ns":...,
//!   "p50_ns":...,"p95_ns":...,"p99_ns":...,"requests":...,
//!   "errors":...,"error_rate":...,"throughput_rps":...,
//!   "connections":...,"duration_s":...}`
//! * **speedup rows** — keep-alive over `Connection: close` closed-loop
//!   throughput: `{"id":"serve/v1_analyze/keepalive_speedup",
//!   "ratio":...,"of":"close/max"}`. Unlike the engine's scale rows,
//!   bigger is better here.
//!
//! [`check_slo`] gates a current run against a committed baseline the
//! way `bench-engine --check` does, plus two hard, baseline-independent
//! ceilings: the error rate may never exceed [`ERROR_RATE_CEILING`]
//! (a saturated admission queue fails by construction — every 503 is
//! an error), and every keep-alive speedup row must stay above
//! [`KEEPALIVE_SPEEDUP_FLOOR`].

use whart_json::Json;

use crate::StressOutcome;

/// Hard ceiling on the error rate of every current-run stat row,
/// independent of the baseline. `whart serve` answers queue overflow
/// with 503, and the stress harness counts every 5xx as an error — so
/// a run against a saturated queue fails this gate by construction.
pub const ERROR_RATE_CEILING: f64 = 0.01;

/// Hard floor on every keep-alive speedup row in the current run: if
/// reusing connections is not at least this much faster than
/// open-close-per-request at the same concurrency, the keep-alive path
/// has regressed into pointlessness. The committed baseline records
/// the real measured ratio (well above this floor); the floor is the
/// never-acceptable boundary, the baseline drift gate is the tight one.
pub const KEEPALIVE_SPEEDUP_FLOOR: f64 = 3.0;

/// `/v1/analyze?x=1` -> `v1_analyze`: path only, slashes flattened, so
/// the id stays one `/`-delimited token per axis.
pub fn sanitize_endpoint(endpoint: &str) -> String {
    let path = endpoint.split('?').next().unwrap_or(endpoint);
    let flat: String = path
        .trim_matches('/')
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if flat.is_empty() {
        "root".to_string()
    } else {
        flat
    }
}

/// The id of a stat row: `serve/{endpoint}/{keepalive|close}/{load}`,
/// where load is `rate{R}` (open loop) or `max` (closed loop).
pub fn row_id(endpoint: &str, keep_alive: bool, rate: Option<f64>) -> String {
    let mode = if keep_alive { "keepalive" } else { "close" };
    let load = match rate {
        Some(r) => format!("rate{}", r.round() as u64),
        None => "max".to_string(),
    };
    format!("serve/{}/{mode}/{load}", sanitize_endpoint(endpoint))
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// One stat row for `outcome` under `id`.
pub fn stat_line(id: &str, outcome: &StressOutcome) -> String {
    let quantile = |q: f64| Json::from(outcome.latency.quantile(q).unwrap_or(0.0));
    Json::object([
        ("id", Json::from(id)),
        (
            "mean_ns",
            Json::from(round1(outcome.latency.mean().unwrap_or(0.0))),
        ),
        ("p50_ns", quantile(0.5)),
        ("p95_ns", quantile(0.95)),
        ("p99_ns", quantile(0.99)),
        ("requests", Json::from(outcome.requests)),
        ("errors", Json::from(outcome.errors)),
        (
            "error_rate",
            Json::from((outcome.error_rate() * 1_000_000.0).round() / 1_000_000.0),
        ),
        (
            "throughput_rps",
            Json::from(round1(outcome.throughput_rps())),
        ),
        ("connections", Json::from(outcome.connections as u64)),
        (
            "duration_s",
            Json::from((outcome.duration.as_secs_f64() * 1000.0).round() / 1000.0),
        ),
    ])
    .to_compact()
}

/// The keep-alive speedup row: closed-loop keep-alive throughput over
/// closed-loop `Connection: close` throughput for one endpoint.
pub fn speedup_line(endpoint: &str, keepalive: &StressOutcome, close: &StressOutcome) -> String {
    let ratio = if close.throughput_rps() > 0.0 {
        keepalive.throughput_rps() / close.throughput_rps()
    } else {
        0.0
    };
    Json::object([
        (
            "id",
            Json::from(format!(
                "serve/{}/keepalive_speedup",
                sanitize_endpoint(endpoint)
            )),
        ),
        ("ratio", Json::from((ratio * 100.0).round() / 100.0)),
        ("of", Json::from("close/max")),
    ])
    .to_compact()
}

/// A parsed stat row (the fields the gate reads).
struct StatRow {
    id: String,
    p99_ns: f64,
    error_rate: f64,
    throughput_rps: f64,
}

/// Parsed `BENCH_serve.json`: stat rows and `(id, ratio)` speedup rows.
type ParsedLines = (Vec<StatRow>, Vec<(String, f64)>);

fn parse_lines(text: &str) -> Result<ParsedLines, String> {
    let mut stats = Vec::new();
    let mut speedups = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("serve bench line {}: {e}", i + 1))?;
        let id = value["id"]
            .as_str()
            .ok_or_else(|| format!("serve bench line {}: missing 'id'", i + 1))?
            .to_string();
        if id.ends_with("/keepalive_speedup") {
            let ratio = value["ratio"].as_f64().ok_or_else(|| {
                format!("serve bench line {}: speedup row missing 'ratio'", i + 1)
            })?;
            speedups.push((id, ratio));
        } else {
            let field = |key: &str| {
                value[key]
                    .as_f64()
                    .ok_or_else(|| format!("serve bench line {}: missing '{key}'", i + 1))
            };
            stats.push(StatRow {
                id,
                p99_ns: field("p99_ns")?,
                error_rate: field("error_rate")?,
                throughput_rps: field("throughput_rps")?,
            });
        }
    }
    Ok((stats, speedups))
}

/// Compares `current` serve bench lines against `baseline`, flagging
/// SLO violations. `tolerance` (0.25 = 25%) bounds drift relative to
/// the baseline; the two hard gates ([`ERROR_RATE_CEILING`],
/// [`KEEPALIVE_SPEEDUP_FLOOR`]) apply to the current run alone.
///
/// Per stat row present in the baseline:
/// * missing from the current run — failure;
/// * current `error_rate` above the hard ceiling — failure, whatever
///   the baseline said;
/// * current `p99_ns` more than `(1 + tolerance)` times the baseline —
///   failure;
/// * current `throughput_rps` below `baseline / (1 + tolerance)` —
///   failure.
///
/// Per speedup row **in the current run**: ratio below the hard floor
/// is a failure. Per speedup row in the baseline: missing from the
/// current run, or current ratio below `baseline / (1 + tolerance)`,
/// is a failure.
///
/// Returns one message per violation; empty means pass.
///
/// # Errors
///
/// Malformed lines on either side.
pub fn check_slo(baseline: &str, current: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let (base_stats, base_speedups) = parse_lines(baseline)?;
    let (cur_stats, cur_speedups) = parse_lines(current)?;
    let mut failures = Vec::new();

    for row in &cur_stats {
        if row.error_rate > ERROR_RATE_CEILING {
            failures.push(format!(
                "{}: error rate {:.2}% exceeds the hard {:.0}% ceiling",
                row.id,
                row.error_rate * 100.0,
                ERROR_RATE_CEILING * 100.0,
            ));
        }
    }
    for base in &base_stats {
        let Some(cur) = cur_stats.iter().find(|r| r.id == base.id) else {
            failures.push(format!("{}: missing from the current run", base.id));
            continue;
        };
        if base.p99_ns > 0.0 && cur.p99_ns > base.p99_ns * (1.0 + tolerance) {
            failures.push(format!(
                "{}: p99 grew {:.1}% (> {:.0}% tolerance; baseline {:.0} ns, current {:.0} ns)",
                base.id,
                (cur.p99_ns / base.p99_ns - 1.0) * 100.0,
                tolerance * 100.0,
                base.p99_ns,
                cur.p99_ns,
            ));
        }
        if base.throughput_rps > 0.0 && cur.throughput_rps < base.throughput_rps / (1.0 + tolerance)
        {
            failures.push(format!(
                "{}: throughput fell {:.1}% (> {:.0}% tolerance; \
                 baseline {:.1} rps, current {:.1} rps)",
                base.id,
                (1.0 - cur.throughput_rps / base.throughput_rps) * 100.0,
                tolerance * 100.0,
                base.throughput_rps,
                cur.throughput_rps,
            ));
        }
    }
    for (id, ratio) in &cur_speedups {
        if *ratio < KEEPALIVE_SPEEDUP_FLOOR {
            failures.push(format!(
                "{id}: keep-alive speedup {ratio:.2}x is below the hard \
                 {KEEPALIVE_SPEEDUP_FLOOR:.0}x floor",
            ));
        }
    }
    for (id, base_ratio) in &base_speedups {
        let Some((_, cur_ratio)) = cur_speedups.iter().find(|(cur_id, _)| cur_id == id) else {
            failures.push(format!("{id}: speedup row missing from the current run"));
            continue;
        };
        if *base_ratio > 0.0 && *cur_ratio < base_ratio / (1.0 + tolerance) {
            failures.push(format!(
                "{id}: keep-alive speedup fell {:.1}% (> {:.0}% tolerance; \
                 baseline {base_ratio:.2}x, current {cur_ratio:.2}x)",
                (1.0 - cur_ratio / base_ratio) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEALTHY: &str = concat!(
        "{\"id\":\"serve/v1_analyze/keepalive/rate500\",\"mean_ns\":400000.0,",
        "\"p50_ns\":350000.0,\"p95_ns\":900000.0,\"p99_ns\":1500000.0,",
        "\"requests\":5000,\"errors\":0,\"error_rate\":0.0,",
        "\"throughput_rps\":500.0,\"connections\":8,\"duration_s\":10.0}\n",
        "{\"id\":\"serve/v1_analyze/keepalive/max\",\"mean_ns\":200000.0,",
        "\"p50_ns\":180000.0,\"p95_ns\":500000.0,\"p99_ns\":900000.0,",
        "\"requests\":90000,\"errors\":0,\"error_rate\":0.0,",
        "\"throughput_rps\":30000.0,\"connections\":4,\"duration_s\":3.0}\n",
        "{\"id\":\"serve/v1_analyze/close/max\",\"mean_ns\":900000.0,",
        "\"p50_ns\":800000.0,\"p95_ns\":2000000.0,\"p99_ns\":4000000.0,",
        "\"requests\":12000,\"errors\":0,\"error_rate\":0.0,",
        "\"throughput_rps\":4000.0,\"connections\":4,\"duration_s\":3.0}\n",
        "{\"id\":\"serve/v1_analyze/keepalive_speedup\",\"ratio\":7.5,\"of\":\"close/max\"}\n",
    );

    #[test]
    fn healthy_run_passes_against_itself() {
        let failures = check_slo(HEALTHY, HEALTHY, 0.25).unwrap();
        assert_eq!(failures, Vec::<String>::new());
    }

    #[test]
    fn saturated_queue_fails_by_construction() {
        // A run against a saturated admission queue: 40% of requests
        // answered 503, and the survivors' p99 blown out. The hard
        // error-rate ceiling fails it even at an absurd tolerance.
        let saturated = HEALTHY.replace(
            "\"requests\":5000,\"errors\":0,\"error_rate\":0.0,\"throughput_rps\":500.0",
            "\"requests\":3000,\"errors\":2000,\"error_rate\":0.4,\"throughput_rps\":300.0",
        );
        let failures = check_slo(HEALTHY, &saturated, 100.0).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("error rate")),
            "expected an error-rate failure, got {failures:?}"
        );
    }

    #[test]
    fn p99_and_throughput_drift_are_flagged() {
        let slow = HEALTHY
            .replace("\"p99_ns\":1500000.0", "\"p99_ns\":4000000.0")
            .replace("\"throughput_rps\":500.0", "\"throughput_rps\":200.0");
        let failures = check_slo(HEALTHY, &slow, 0.25).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("p99 grew")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("throughput fell")),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_rows_fail() {
        let current: String = HEALTHY
            .lines()
            .filter(|l| !l.contains("/close/max") && !l.contains("keepalive_speedup"))
            .map(|l| format!("{l}\n"))
            .collect();
        let failures = check_slo(HEALTHY, &current, 0.25).unwrap();
        assert!(
            failures
                .iter()
                .any(|f| f.contains("serve/v1_analyze/close/max: missing")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("speedup row missing")),
            "{failures:?}"
        );
    }

    #[test]
    fn speedup_below_the_hard_floor_fails() {
        let flat = HEALTHY.replace("\"ratio\":7.5", "\"ratio\":1.1");
        let failures = check_slo(&flat, &flat, 0.25).unwrap();
        assert!(
            failures.iter().any(|f| f.contains("below the hard")),
            "{failures:?}"
        );
    }

    #[test]
    fn malformed_lines_error() {
        assert!(check_slo("not json", HEALTHY, 0.25).is_err());
        assert!(check_slo(HEALTHY, "{\"no_id\":1}", 0.25).is_err());
    }

    #[test]
    fn ids_are_sanitized_and_stable() {
        assert_eq!(
            row_id("/v1/analyze", true, Some(500.0)),
            "serve/v1_analyze/keepalive/rate500"
        );
        assert_eq!(
            row_id("/v1/analyze?q=1", false, None),
            "serve/v1_analyze/close/max"
        );
        assert_eq!(row_id("/", true, None), "serve/root/keepalive/max");
    }

    #[test]
    fn committed_baseline_parses_and_checks_against_itself() {
        let baseline = include_str!("../../../BENCH_serve.json");
        let failures = check_slo(baseline, baseline, 0.25).unwrap();
        assert_eq!(failures, Vec::<String>::new());
    }
}
