//! End-to-end load-generation tests against a real in-process
//! `whart-serve` instance: closed-loop keep-alive and close modes,
//! open-loop rate pacing, and the emit/check round trip.

use std::net::SocketAddr;
use std::time::Duration;

use whart_serve::{Flag, Response, Router, Server, ServerConfig};
use whart_stress::{report, run, StressConfig};

fn start() -> (SocketAddr, Flag, std::thread::JoinHandle<()>) {
    let config = ServerConfig::default();
    let router = Router::new()
        .route("GET", "/ping", |_| Response::text(200, "pong\n"))
        .route("POST", "/echo", |req| {
            Response::text(200, req.body_text().unwrap_or("?").to_string())
        });
    let mut server = Server::bind(&config).unwrap();
    server.set_router(router);
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    (addr, shutdown, handle)
}

fn base_config(addr: SocketAddr) -> StressConfig {
    StressConfig {
        addr: addr.to_string(),
        endpoint: "/ping".to_string(),
        method: "GET".to_string(),
        body: Vec::new(),
        rate: None,
        duration: Duration::from_millis(400),
        connections: 2,
        keep_alive: true,
        pipeline: 8,
    }
}

#[test]
fn closed_loop_keepalive_outruns_connection_close() {
    let (addr, shutdown, handle) = start();
    let keepalive = run(&base_config(addr)).unwrap();
    let close = run(&StressConfig {
        keep_alive: false,
        ..base_config(addr)
    })
    .unwrap();
    shutdown.set();
    handle.join().unwrap();

    assert_eq!(keepalive.errors, 0, "keep-alive run saw errors");
    assert_eq!(close.errors, 0, "close run saw errors");
    assert!(keepalive.requests > 0 && close.requests > 0);
    // The acceptance bar is 5x on the real /v1/analyze baseline; here
    // only the direction is asserted so a loaded CI box cannot flake.
    assert!(
        keepalive.throughput_rps() > close.throughput_rps(),
        "keep-alive ({:.0} rps) should beat Connection: close ({:.0} rps)",
        keepalive.throughput_rps(),
        close.throughput_rps(),
    );
    assert!(keepalive.latency.count > 0);
}

#[test]
fn open_loop_rate_issues_the_scheduled_number_of_requests() {
    let (addr, shutdown, handle) = start();
    // 200 req/s for 0.5 s = exactly 100 scheduled arrivals.
    let outcome = run(&StressConfig {
        rate: Some(200.0),
        duration: Duration::from_millis(500),
        ..base_config(addr)
    })
    .unwrap();
    shutdown.set();
    handle.join().unwrap();

    assert_eq!(outcome.errors, 0);
    assert_eq!(
        outcome.requests, 100,
        "open loop must issue every scheduled arrival exactly once"
    );
}

#[test]
fn outcomes_round_trip_through_report_lines_and_the_slo_gate() {
    let (addr, shutdown, handle) = start();
    let keepalive = run(&base_config(addr)).unwrap();
    let close = run(&StressConfig {
        keep_alive: false,
        ..base_config(addr)
    })
    .unwrap();
    shutdown.set();
    handle.join().unwrap();

    let mut lines = String::new();
    lines.push_str(&report::stat_line(
        &report::row_id("/ping", true, None),
        &keepalive,
    ));
    lines.push('\n');
    lines.push_str(&report::stat_line(
        &report::row_id("/ping", false, None),
        &close,
    ));
    lines.push('\n');
    lines.push_str(&report::speedup_line("/ping", &keepalive, &close));
    lines.push('\n');

    // The freshly measured lines must parse and pass against
    // themselves — except possibly the speedup floor, which a loaded
    // test machine cannot guarantee; tolerate only that failure class.
    let failures = report::check_slo(&lines, &lines, 0.25).unwrap();
    for failure in &failures {
        assert!(
            failure.contains("below the hard"),
            "unexpected self-check failure: {failure}"
        );
    }
}

#[test]
fn run_rejects_invalid_configurations() {
    let config = StressConfig {
        connections: 0,
        ..base_config("127.0.0.1:1".parse().unwrap())
    };
    assert!(run(&config).unwrap_err().contains("connections"));
    let config = StressConfig {
        rate: Some(0.0),
        ..base_config("127.0.0.1:1".parse().unwrap())
    };
    assert!(run(&config).unwrap_err().contains("rate"));
}

#[test]
fn a_dead_server_is_a_hard_error_not_a_silent_report() {
    // Port 1 refuses connections; every request fails, which must be
    // surfaced as Err rather than an all-error outcome.
    let config = StressConfig {
        duration: Duration::from_millis(100),
        connections: 1,
        ..base_config("127.0.0.1:1".parse().unwrap())
    };
    let error = run(&config).unwrap_err();
    assert!(error.contains("is the server up"), "{error}");
}
