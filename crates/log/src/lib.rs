//! whart-log: the workspace's structured logger.
//!
//! `whart-obs` answers *how much*, `whart-trace` answers *why*; this
//! crate answers *what happened*, one line at a time: leveled, wide
//! JSONL events — a service emits one canonical event per HTTP request
//! carrying the route, status code, byte counts, queue wait, engine
//! time, cache hits and the request id — written to a file, stdout or
//! stderr.
//!
//! The contract mirrors the `whart-obs`/`whart-trace` facades:
//!
//! * [`Logger::disabled`] (the default) carries no sink at all. Every
//!   event site costs a single `Option` branch — no allocation, no
//!   clock read, no lock. Logging must never perturb results: enabled
//!   or disabled, the observed computation is bit-identical.
//! * Events below the configured [`Level`] are refused at the same
//!   single branch, before any field is converted.
//! * Enabled handles render events into per-thread buffers, so the hot
//!   path takes no lock; buffers flush to the shared sink every
//!   [`FLUSH_CHUNK`] lines, on [`Logger::flush`] (a service calls it
//!   after each request) and when a thread exits.
//!
//! Every line is a flat JSON object with three fixed leading fields —
//! `ts_ms` (Unix milliseconds), `level`, `event` — followed by the
//! event's own fields in emission order:
//!
//! ```text
//! {"ts_ms":1754650000123,"level":"info","event":"http_request","request_id":"a3f2c1-000007","route":"/v1/analyze","code":200}
//! ```
//!
//! ```
//! use whart_log::{Level, Logger};
//!
//! // Disabled: same call sites, no effect, one branch each.
//! let log = Logger::disabled();
//! log.event(Level::Info, "http_request")
//!     .field("route", "/v1/analyze")
//!     .field("code", 200u64)
//!     .emit();
//! assert!(!log.is_enabled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{SystemTime, UNIX_EPOCH};

use whart_json::Json;

/// Thread-local buffer length (in lines) at which a chunk is flushed to
/// the shared sink.
pub const FLUSH_CHUNK: usize = 64;

/// Source of unique logger identities (thread-local buffers key on
/// these, so a new logger never inherits a dead logger's buffers).
static NEXT_LOGGER_ID: AtomicU64 = AtomicU64::new(0);

/// Event severity, from most to least urgent. The logger's configured
/// level admits events at that level and above (`Info` admits `Error`,
/// `Warn` and `Info`; `Debug` admits everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A request or subsystem failed.
    Error,
    /// Degraded but proceeding (overflow rejections, slow outliers).
    Warn,
    /// The canonical per-request wide events.
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    /// The lowercase name used on log lines and by `--log-level`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `--log-level` value (case-insensitive). This is the one
    /// shared parser every CLI flag goes through.
    ///
    /// # Errors
    ///
    /// Names the accepted levels.
    pub fn parse(text: &str) -> Result<Level, String> {
        match text.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected error, warn, info or debug)"
            )),
        }
    }
}

/// Where rendered lines go.
enum Target {
    Stdout,
    Stderr,
    File(std::fs::File),
}

impl Target {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Target::Stdout => {
                let stdout = std::io::stdout();
                let mut lock = stdout.lock();
                lock.write_all(bytes)?;
                lock.flush()
            }
            Target::Stderr => {
                let stderr = std::io::stderr();
                let mut lock = stderr.lock();
                lock.write_all(bytes)?;
                lock.flush()
            }
            Target::File(file) => {
                file.write_all(bytes)?;
                file.flush()
            }
        }
    }
}

/// The sink behind an enabled [`Logger`] handle.
struct Shared {
    id: u64,
    level: Level,
    sink: Mutex<Target>,
    /// Lines lost to sink write failures (logging must not take the
    /// service down; failures are counted, not propagated).
    write_errors: AtomicU64,
}

thread_local! {
    static LOCAL: RefCell<Vec<LocalBuffer>> = const { RefCell::new(Vec::new()) };
}

/// One thread's pending rendered lines for one logger.
struct LocalBuffer {
    logger_id: u64,
    shared: Weak<Shared>,
    bytes: Vec<u8>,
    lines: usize,
}

impl LocalBuffer {
    fn flush(&mut self) {
        if self.bytes.is_empty() {
            return;
        }
        if let Some(shared) = self.shared.upgrade() {
            let result = shared.sink.lock().expect("log sink").write_all(&self.bytes);
            if result.is_err() {
                shared
                    .write_errors
                    .fetch_add(self.lines as u64, Ordering::Relaxed);
            }
        }
        self.bytes.clear();
        self.lines = 0;
    }
}

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Appends one rendered line to this thread's buffer for `shared`.
fn buffer_line(shared: &Arc<Shared>, line: &str) {
    let mut pending = Some(line);
    let _ = LOCAL.try_with(|local| {
        let mut buffers = local.borrow_mut();
        let buffer = match buffers.iter_mut().position(|b| b.logger_id == shared.id) {
            Some(i) => &mut buffers[i],
            None => {
                buffers.retain(|b| b.shared.strong_count() > 0);
                buffers.push(LocalBuffer {
                    logger_id: shared.id,
                    shared: Arc::downgrade(shared),
                    bytes: Vec::with_capacity(4096),
                    lines: 0,
                });
                buffers.last_mut().expect("just pushed")
            }
        };
        let line = pending.take().expect("line buffered once");
        buffer.bytes.extend_from_slice(line.as_bytes());
        buffer.bytes.push(b'\n');
        buffer.lines += 1;
        if buffer.lines >= FLUSH_CHUNK {
            buffer.flush();
        }
    });
    if let Some(line) = pending {
        // Thread-local storage is tearing down (thread exit): write
        // straight to the sink.
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        if shared
            .sink
            .lock()
            .expect("log sink")
            .write_all(&bytes)
            .is_err()
        {
            shared.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable handle to a structured JSONL sink, or a no-op stand-in.
///
/// Cloning shares the sink: events emitted through any clone (on any
/// thread) land in the same output in flush order. The default handle
/// is disabled.
#[derive(Clone, Default)]
pub struct Logger {
    shared: Option<Arc<Shared>>,
}

impl Logger {
    fn with_target(target: Target, level: Level) -> Logger {
        Logger {
            shared: Some(Arc::new(Shared {
                id: NEXT_LOGGER_ID.fetch_add(1, Ordering::Relaxed),
                level,
                sink: Mutex::new(target),
                write_errors: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op handle: every event site resolved through it records
    /// nothing and costs one branch.
    pub fn disabled() -> Logger {
        Logger { shared: None }
    }

    /// An enabled logger writing JSONL to stdout.
    pub fn to_stdout(level: Level) -> Logger {
        Logger::with_target(Target::Stdout, level)
    }

    /// An enabled logger writing JSONL to stderr.
    pub fn to_stderr(level: Level) -> Logger {
        Logger::with_target(Target::Stderr, level)
    }

    /// An enabled logger writing JSONL to `path` (created or
    /// truncated).
    ///
    /// # Errors
    ///
    /// When the file cannot be created.
    pub fn to_file(path: &str, level: Level) -> std::io::Result<Logger> {
        Ok(Logger::with_target(
            Target::File(std::fs::File::create(path)?),
            level,
        ))
    }

    /// The shared `--log <target>` mapping: `-` is stdout, `stderr` is
    /// stderr, anything else is a file path.
    ///
    /// # Errors
    ///
    /// When a file target cannot be created.
    pub fn for_target(target: &str, level: Level) -> Result<Logger, String> {
        match target {
            "-" => Ok(Logger::to_stdout(level)),
            "stderr" => Ok(Logger::to_stderr(level)),
            path => Logger::to_file(path, level)
                .map_err(|e| format!("cannot open log file {path}: {e}")),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The configured admission level (`None` when disabled).
    pub fn level(&self) -> Option<Level> {
        self.shared.as_ref().map(|s| s.level)
    }

    /// Lines lost to sink write failures so far.
    pub fn write_errors(&self) -> u64 {
        self.shared
            .as_ref()
            .map_or(0, |s| s.write_errors.load(Ordering::Relaxed))
    }

    /// Starts an event at `level` named `event`. Returns a no-op
    /// builder when the handle is disabled or the level is below the
    /// configured threshold — fields attached to a refused event are
    /// never converted.
    pub fn event(&self, level: Level, event: &'static str) -> Event<'_> {
        let inner = self.shared.as_ref().filter(|s| level <= s.level).map(|s| {
            let ts_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64);
            EventInner {
                shared: s,
                fields: vec![
                    ("ts_ms".into(), Json::from(ts_ms)),
                    ("level".into(), Json::from(level.as_str())),
                    ("event".into(), Json::from(event)),
                ],
            }
        });
        Event { inner }
    }

    /// Flushes the calling thread's pending lines to the sink. Services
    /// call this at a natural publication point — after finishing a
    /// request — so a reader tailing the file observes completed events
    /// without waiting for a [`FLUSH_CHUNK`] boundary or thread exit.
    pub fn flush(&self) {
        let Some(shared) = &self.shared else {
            return;
        };
        let _ = LOCAL.try_with(|local| {
            let mut buffers = local.borrow_mut();
            if let Some(buffer) = buffers.iter_mut().find(|b| b.logger_id == shared.id) {
                buffer.flush();
            }
        });
    }
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("enabled", &self.is_enabled())
            .field("level", &self.level())
            .finish()
    }
}

struct EventInner<'a> {
    shared: &'a Arc<Shared>,
    fields: Vec<(String, Json)>,
}

/// A wide-event builder; renders and buffers one JSONL line on
/// [`Event::emit`]. Dropping without `emit` discards the event.
pub struct Event<'a> {
    inner: Option<EventInner<'a>>,
}

impl Event<'_> {
    /// Whether this event will be written (false when the logger is
    /// disabled or the level was refused). Guard expensive field values
    /// with this.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches one field. On a refused event the value is not
    /// converted.
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<Json>) -> Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.into(), value.into()));
        }
        self
    }

    /// Renders the event and buffers it for the sink.
    pub fn emit(self) {
        if let Some(inner) = self.inner {
            let line = Json::Object(inner.fields).to_compact();
            buffer_line(inner.shared, &line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("whart-log-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("info"), Ok(Level::Info));
        assert_eq!(Level::parse("WARN"), Ok(Level::Warn));
        assert_eq!(Level::parse("warning"), Ok(Level::Warn));
        assert_eq!(Level::parse("debug").unwrap().as_str(), "debug");
        assert!(Level::parse("verbose").unwrap_err().contains("log level"));
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let log = Logger::disabled();
        assert!(!log.is_enabled());
        assert_eq!(log.level(), None);
        let event = log.event(Level::Error, "boom");
        assert!(!event.is_recording());
        event.field("k", 1u64).emit();
        log.flush();
        assert_eq!(log.write_errors(), 0);
        assert!(!Logger::default().is_enabled());
    }

    #[test]
    fn file_sink_writes_schema_lines_in_order() {
        let path = temp_path("lines.jsonl");
        let log = Logger::to_file(&path, Level::Info).unwrap();
        log.event(Level::Info, "http_request")
            .field("request_id", "req-1")
            .field("route", "/v1/analyze")
            .field("code", 200u64)
            .emit();
        log.event(Level::Warn, "queue_overflow")
            .field("request_id", "req-2")
            .emit();
        log.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert!(first["ts_ms"].as_u64().is_some());
        assert_eq!(first["level"].as_str(), Some("info"));
        assert_eq!(first["event"].as_str(), Some("http_request"));
        assert_eq!(first["request_id"].as_str(), Some("req-1"));
        assert_eq!(first["code"].as_u64(), Some(200));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second["level"].as_str(), Some("warn"));
    }

    #[test]
    fn events_below_the_level_are_refused_before_conversion() {
        let path = temp_path("filtered.jsonl");
        let log = Logger::to_file(&path, Level::Warn).unwrap();
        assert!(log.event(Level::Error, "kept").is_recording());
        assert!(!log.event(Level::Info, "refused").is_recording());
        log.event(Level::Info, "refused").field("k", 1u64).emit();
        log.event(Level::Error, "kept").emit();
        log.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"kept\""));
    }

    #[test]
    fn threads_flush_on_exit_and_clones_share_the_sink() {
        let path = temp_path("threads.jsonl");
        let log = Logger::to_file(&path, Level::Debug).unwrap();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let log = log.clone();
                scope.spawn(move || {
                    for i in 0..10u64 {
                        log.event(Level::Debug, "tick")
                            .field("worker", worker as u64)
                            .field("i", i)
                            .emit();
                    }
                });
            }
        });
        // Thread-local destructors may straggle briefly after join on a
        // loaded machine; poll rather than racing them.
        let mut text = String::new();
        for _ in 0..200 {
            text = std::fs::read_to_string(&path).unwrap();
            if text.lines().count() == 40 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(text.lines().count(), 40, "threads flush on exit");
        for line in text.lines() {
            Json::parse(line).expect("every line parses");
        }
    }

    #[test]
    fn chunked_flushing_reaches_the_sink_mid_thread() {
        let path = temp_path("chunks.jsonl");
        let log = Logger::to_file(&path, Level::Info).unwrap();
        for i in 0..(FLUSH_CHUNK as u64 + 3) {
            log.event(Level::Info, "e").field("i", i).emit();
        }
        // The first chunk is already durable without an explicit flush.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.lines().count(),
            FLUSH_CHUNK,
            "{}",
            text.lines().count()
        );
        log.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), FLUSH_CHUNK + 3);
    }

    #[test]
    fn target_mapping_matches_the_cli_contract() {
        assert!(Logger::for_target("-", Level::Info).is_ok());
        assert!(Logger::for_target("stderr", Level::Info).is_ok());
        let path = temp_path("mapped.jsonl");
        let log = Logger::for_target(&path, Level::Info).unwrap();
        assert!(log.is_enabled());
        assert!(
            Logger::for_target("/nonexistent-dir-xyz/log.jsonl", Level::Info)
                .unwrap_err()
                .contains("cannot open log file")
        );
    }
}
