//! Zero-cost-when-disabled sampling profiler for the whart workspace.
//!
//! The fourth observability facade, alongside `whart-obs` (metrics),
//! `whart-trace` (event journal) and `whart-log` (structured logs). A
//! [`Profiler`] is a handle around `Option<Arc<Shared>>`: the default
//! [`Profiler::disabled`] handle records nothing, allocates nothing and
//! reads no clocks, so instrumented hot paths cost a branch when
//! profiling is off.
//!
//! Instead of signals and stack unwinding (which need `unsafe`, libc
//! and debug info), instrumented threads publish a bounded, lock-free
//! **activity stack** of interned frame labels: entering a region pushes
//! a [`Frame`] via [`Profiler::enter`] and the returned [`ProfGuard`]
//! pops it on drop. A capture ([`Profiler::start_capture`]) runs a
//! sampler thread that wakes at a fixed rate, snapshots every live
//! activity stack and folds the observations into stack counts, which
//! render as flamegraph-compatible collapsed text (`a;b;c 42`, one line
//! per distinct stack — see [`Profile::to_folded`]) or as a JSON profile
//! with per-thread and per-frame totals ([`Profile::to_json`]).
//!
//! Because only instrumented regions are visible, this is a wall-clock
//! *activity* profiler: threads with an empty activity stack (parked
//! workers, idle keep-alive handlers) contribute no samples, and a
//! sample attributes the whole tick to whatever stack the thread had
//! published at that instant. Stacks are read racily (the owner thread
//! never blocks on the sampler); a torn read can at worst attribute one
//! tick to a transiently inconsistent stack, which is noise at any
//! realistic rate.
//!
//! The crate also ships process resource telemetry read from `/proc`
//! ([`ProcessStats`], [`ResourceSampler`]) so servers can export
//! `process_*` gauges without libc.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use whart_json::Json;

/// Default sampling rate for captures, in samples per second. A prime
/// just under 1 kHz, so the sampler never locks phase with millisecond-
/// periodic work (timer wheels, batch ticks) and systematically over- or
/// under-samples it.
pub const DEFAULT_HZ: u32 = 997;

/// Frames deeper than this are counted but not recorded; the sampler
/// sees the stack truncated at this depth. Instrumentation nests a
/// handful of levels (command > stage > solver > kernel), so 32 leaves
/// generous headroom.
pub const MAX_DEPTH: usize = 32;

/// Hard cap on distinct interned frame labels; labels are static
/// (instrumentation sites, not data), so hitting this means a bug.
const MAX_FRAMES: usize = u16::MAX as usize;

/// Replaces every character that would corrupt the folded-stack text
/// format (`;` separates frames, whitespace separates the count, and
/// newlines separate records) with `_`. Applied when a label is
/// interned, so hostile names can never reach an emitter.
pub fn sanitize_frame(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// An interned activity-frame label, resolved once via
/// [`Profiler::frame`] and cheap to copy into hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame(u16);

/// One thread's published activity stack: a fixed ring of frame ids
/// plus a depth counter. Only the owner thread writes; the sampler
/// reads racily (Acquire on `depth` pairs with the owner's Release, so
/// a frame store is visible before the depth that exposes it).
struct ThreadSlot {
    name: Arc<str>,
    depth: AtomicUsize,
    frames: [AtomicU16; MAX_DEPTH],
    dead: AtomicBool,
}

impl ThreadSlot {
    fn new(name: Arc<str>) -> ThreadSlot {
        ThreadSlot {
            name,
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU16::new(0)),
            dead: AtomicBool::new(false),
        }
    }

    fn push(&self, frame: u16) {
        let depth = self.depth.load(Ordering::Relaxed);
        if depth < MAX_DEPTH {
            self.frames[depth].store(frame, Ordering::Relaxed);
        }
        self.depth.store(depth + 1, Ordering::Release);
    }

    fn pop(&self) {
        let depth = self.depth.load(Ordering::Relaxed);
        self.depth.store(depth.saturating_sub(1), Ordering::Release);
    }

    /// Racy snapshot of the stack, root-first; empty when idle.
    fn sample(&self, out: &mut Vec<u16>) {
        out.clear();
        let depth = self.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        for slot in &self.frames[..depth] {
            out.push(slot.load(Ordering::Relaxed));
        }
    }
}

/// Interned frame labels: id assignment is first-come, lookups by name.
#[derive(Default)]
struct FrameTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

struct Shared {
    /// Distinguishes profilers in the per-thread slot cache.
    id: u64,
    frames: Mutex<FrameTable>,
    threads: Mutex<Vec<Arc<ThreadSlot>>>,
}

static NEXT_PROFILER_ID: AtomicUsize = AtomicUsize::new(1);
static NEXT_ANON_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT_CACHE: std::cell::RefCell<SlotCache> =
        const { std::cell::RefCell::new(SlotCache(Vec::new())) };
}

/// Per-thread cache of (profiler id, slot). Dropping it (thread exit)
/// empties and tombstones the slots so samplers skip them and the next
/// registration sweeps them out of the shared list.
struct SlotCache(Vec<(u64, Arc<ThreadSlot>)>);

impl Drop for SlotCache {
    fn drop(&mut self) {
        for (_, slot) in &self.0 {
            slot.depth.store(0, Ordering::Release);
            slot.dead.store(true, Ordering::Release);
        }
    }
}

impl Shared {
    /// The calling thread's activity slot for this profiler, registering
    /// (and naming) it on first use. The fast path is one thread-local
    /// lookup; the shared list is only locked on registration.
    fn slot(self: &Arc<Self>) -> Arc<ThreadSlot> {
        SLOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, slot)) = cache.0.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(slot);
            }
            let name: Arc<str> = match std::thread::current().name() {
                Some(name) => sanitize_frame(name).into(),
                None => {
                    let n = NEXT_ANON_THREAD.fetch_add(1, Ordering::Relaxed);
                    format!("thread-{n}").into()
                }
            };
            let slot = Arc::new(ThreadSlot::new(name));
            let mut threads = self.threads.lock().expect("profiler thread list poisoned");
            threads.retain(|s| !s.dead.load(Ordering::Acquire));
            threads.push(Arc::clone(&slot));
            drop(threads);
            cache.0.push((self.id, Arc::clone(&slot)));
            slot
        })
    }
}

/// Handle to a (possibly disabled) profiler. Cloning shares the
/// underlying state; the [`Profiler::disabled`] / [`Default`] handle
/// is inert and free.
#[derive(Clone, Default)]
pub struct Profiler {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Profiler {
    /// Creates an enabled profiler with an empty frame table.
    pub fn new() -> Profiler {
        Profiler {
            shared: Some(Arc::new(Shared {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed) as u64,
                frames: Mutex::new(FrameTable::default()),
                threads: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The inert handle: every operation is a no-op.
    pub fn disabled() -> Profiler {
        Profiler { shared: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Interns `name` (sanitized via [`sanitize_frame`]) and returns its
    /// [`Frame`]. Takes a lock — resolve frames once per drain/request,
    /// outside hot loops. On a disabled handle this returns an inert
    /// frame without locking anything.
    pub fn frame(&self, name: &str) -> Frame {
        let Some(shared) = &self.shared else {
            return Frame(0);
        };
        let clean = sanitize_frame(name);
        let mut table = shared.frames.lock().expect("profiler frame table poisoned");
        if let Some(&id) = table.index.get(&clean) {
            return Frame(id);
        }
        if table.names.len() >= MAX_FRAMES {
            // Static instrumentation sites can't realistically get here;
            // collapse the overflow onto the last interned label rather
            // than panicking in a profiler.
            return Frame((MAX_FRAMES - 1) as u16);
        }
        let id = table.names.len() as u16;
        table.names.push(clean.clone());
        table.index.insert(clean, id);
        Frame(id)
    }

    /// Pushes `frame` onto the calling thread's activity stack,
    /// returning a guard that pops it on drop. On a disabled handle this
    /// touches no thread-local state and costs one branch.
    pub fn enter(&self, frame: Frame) -> ProfGuard {
        let Some(shared) = &self.shared else {
            return ProfGuard { slot: None };
        };
        let slot = shared.slot();
        slot.push(frame.0);
        ProfGuard { slot: Some(slot) }
    }

    /// Starts a sampling capture at `hz` samples per second (clamped to
    /// at least 1), or `None` on a disabled handle. Concurrent captures
    /// on one profiler are independent — a long-lived `--profile`
    /// capture and an on-demand `/v1/debug/profile` capture can overlap.
    pub fn start_capture(&self, hz: u32) -> Option<Capture> {
        let shared = Arc::clone(self.shared.as_ref()?);
        let hz = hz.max(1);
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_sampler = Arc::clone(&stop);
        let sampler_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("whart-prof-sampler".to_string())
            .spawn(move || {
                let period = Duration::from_secs_f64(1.0 / f64::from(hz));
                let mut acc: HashMap<Arc<str>, ThreadAcc> = HashMap::new();
                let mut scratch: Vec<u16> = Vec::with_capacity(MAX_DEPTH);
                let (lock, cvar) = &*stop_sampler;
                loop {
                    sample_once(&sampler_shared, &mut acc, &mut scratch);
                    let stopped = lock.lock().expect("capture stop flag poisoned");
                    if *stopped {
                        break;
                    }
                    let (stopped, _) = cvar
                        .wait_timeout(stopped, period)
                        .expect("capture stop flag poisoned");
                    if *stopped {
                        break;
                    }
                }
                acc
            })
            .expect("spawn profiler sampler thread");
        Some(Capture {
            shared,
            stop,
            handle: Some(handle),
            hz,
            started: Instant::now(),
        })
    }
}

/// Per-thread sample accumulator inside a running capture.
#[derive(Default)]
struct ThreadAcc {
    samples: u64,
    stacks: HashMap<Vec<u16>, u64>,
}

/// One sampler tick: fold every live, non-idle activity stack.
fn sample_once(shared: &Shared, acc: &mut HashMap<Arc<str>, ThreadAcc>, scratch: &mut Vec<u16>) {
    let threads = shared
        .threads
        .lock()
        .expect("profiler thread list poisoned");
    for slot in threads.iter() {
        if slot.dead.load(Ordering::Acquire) {
            continue;
        }
        slot.sample(scratch);
        if scratch.is_empty() {
            continue;
        }
        let thread = acc.entry(Arc::clone(&slot.name)).or_default();
        thread.samples += 1;
        *thread.stacks.entry(scratch.clone()).or_insert(0) += 1;
    }
}

/// Pops the frame pushed by [`Profiler::enter`] on drop. Not `Send`:
/// the pop must happen on the thread that pushed.
pub struct ProfGuard {
    slot: Option<Arc<ThreadSlot>>,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        if let Some(slot) = &self.slot {
            slot.pop();
        }
    }
}

/// A running sampling capture; stop it to obtain the [`Profile`].
/// Dropping a capture without stopping signals the sampler to exit and
/// discards its samples.
pub struct Capture {
    shared: Arc<Shared>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<HashMap<Arc<str>, ThreadAcc>>>,
    hz: u32,
    started: Instant,
}

impl Capture {
    /// Signals the sampler, joins it and renders the accumulated
    /// samples.
    pub fn stop(mut self) -> Profile {
        let acc = self.halt();
        let duration = self.started.elapsed();
        let names = {
            let table = self
                .shared
                .frames
                .lock()
                .expect("profiler frame table poisoned");
            table.names.clone()
        };
        let resolve = |id: &u16| -> String {
            names
                .get(*id as usize)
                .cloned()
                .unwrap_or_else(|| "?".to_string())
        };
        let mut threads: Vec<ThreadProfile> = acc
            .into_iter()
            .map(|(name, thread)| {
                let mut stacks: Vec<(Vec<String>, u64)> = thread
                    .stacks
                    .into_iter()
                    .map(|(ids, count)| (ids.iter().map(resolve).collect(), count))
                    .collect();
                stacks.sort();
                ThreadProfile {
                    name: name.to_string(),
                    samples: thread.samples,
                    stacks,
                }
            })
            .collect();
        threads.sort_by(|a, b| a.name.cmp(&b.name));
        Profile {
            hz: self.hz,
            duration,
            threads,
        }
    }

    fn halt(&mut self) -> HashMap<Arc<str>, ThreadAcc> {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("capture stop flag poisoned") = true;
        cvar.notify_all();
        match self.handle.take() {
            Some(handle) => handle.join().expect("profiler sampler does not panic"),
            None => HashMap::new(),
        }
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.halt();
        }
    }
}

/// A per-thread profile over one capture's samples. All fields are
/// public so captures can be synthesized in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadProfile {
    /// Sanitized thread name (the folded root frame).
    pub name: String,
    /// Ticks on which this thread had a non-empty activity stack.
    pub samples: u64,
    /// Distinct observed stacks, root-first, with their sample counts.
    pub stacks: Vec<(Vec<String>, u64)>,
}

/// The rendered result of a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Sampling rate the capture ran at.
    pub hz: u32,
    /// Wall-clock duration of the capture.
    pub duration: Duration,
    /// Per-thread stack counts, sorted by thread name.
    pub threads: Vec<ThreadProfile>,
}

impl Profile {
    /// Total samples across all threads.
    pub fn total_samples(&self) -> u64 {
        self.threads.iter().map(|t| t.samples).sum()
    }

    /// Inclusive sample count of `frame` (ticks whose stack contains
    /// it, on any thread; a stack counts once even if the frame
    /// repeats).
    pub fn frame_total(&self, frame: &str) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| &t.stacks)
            .filter(|(stack, _)| stack.iter().any(|f| f == frame))
            .map(|(_, count)| count)
            .sum()
    }

    /// Samples attributed to threads whose name starts with `prefix`
    /// (e.g. `whart-worker-` for the engine pool).
    pub fn thread_samples(&self, prefix: &str) -> u64 {
        self.threads
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.samples)
            .sum()
    }

    /// Flamegraph-collapsed text: one `thread;frame;frame count` line
    /// per distinct stack, the thread name as the root frame, sorted
    /// for determinism. Frame names are sanitized at interning, so no
    /// frame ever contains `;`, whitespace or a newline.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for thread in &self.threads {
            for (stack, count) in &thread.stacks {
                out.push_str(&thread.name);
                for frame in stack {
                    out.push(';');
                    out.push_str(frame);
                }
                out.push(' ');
                out.push_str(&count.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// JSON profile: capture parameters, per-thread stacks and
    /// per-frame inclusive/self totals.
    pub fn to_json(&self) -> Json {
        let mut inclusive: HashMap<&str, u64> = HashMap::new();
        let mut self_total: HashMap<&str, u64> = HashMap::new();
        for thread in &self.threads {
            for (stack, count) in &thread.stacks {
                let mut seen: Vec<&str> = Vec::with_capacity(stack.len());
                for frame in stack {
                    if !seen.contains(&frame.as_str()) {
                        seen.push(frame);
                        *inclusive.entry(frame).or_insert(0) += count;
                    }
                }
                if let Some(leaf) = stack.last() {
                    *self_total.entry(leaf).or_insert(0) += count;
                }
            }
        }
        let mut frames: Vec<(&str, u64)> = inclusive.into_iter().collect();
        frames.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Json::object([
            ("hz", Json::Number(f64::from(self.hz))),
            (
                "duration_ms",
                Json::Number(self.duration.as_secs_f64() * 1e3),
            ),
            ("total_samples", Json::Number(self.total_samples() as f64)),
            (
                "threads",
                Json::Array(
                    self.threads
                        .iter()
                        .map(|t| {
                            Json::object([
                                ("name", Json::String(t.name.clone())),
                                ("samples", Json::Number(t.samples as f64)),
                                (
                                    "stacks",
                                    Json::Array(
                                        t.stacks
                                            .iter()
                                            .map(|(stack, count)| {
                                                Json::object([
                                                    (
                                                        "frames",
                                                        Json::Array(
                                                            stack
                                                                .iter()
                                                                .map(|f| Json::String(f.clone()))
                                                                .collect(),
                                                        ),
                                                    ),
                                                    ("count", Json::Number(*count as f64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "frames",
                Json::Array(
                    frames
                        .iter()
                        .map(|(name, total)| {
                            Json::object([
                                ("name", Json::String((*name).to_string())),
                                ("total", Json::Number(*total as f64)),
                                (
                                    "self",
                                    Json::Number(self_total.get(name).copied().unwrap_or(0) as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Parses flamegraph-collapsed text back into `(stack, count)` records
/// (the thread root frame is `stack[0]`). Blank lines are skipped.
///
/// # Errors
///
/// Rejects lines without a count, with a non-numeric count, or with
/// empty frames (`;;`, leading/trailing `;`).
pub fn parse_folded(text: &str) -> std::result::Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("folded line {}: missing sample count: {line:?}", i + 1))?;
        let count: u64 = count
            .parse()
            .map_err(|_| format!("folded line {}: bad sample count {count:?}", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("folded line {}: empty frame in {stack:?}", i + 1));
        }
        out.push((frames, count));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Process resource telemetry (/proc, std-only).
// ---------------------------------------------------------------------------

/// Kernel clock ticks per second. `sysconf(_SC_CLK_TCK)` needs libc;
/// the value is 100 on every Linux configuration Rust supports (the
/// USER_HZ ABI constant, fixed independently of the scheduler HZ).
const CLK_TCK: f64 = 100.0;

/// Bytes per page for `/proc/self/statm` (4096 on every supported
/// Linux target; huge pages don't change the statm unit).
const PAGE_SIZE: u64 = 4096;

/// A point-in-time snapshot of the process's resource usage, read from
/// `/proc/self/stat`, `/proc/self/statm` and `/proc/self/fd`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessStats {
    /// CPU utilization in percent of one core (user + system). A
    /// one-shot sample reports the process-lifetime average; a
    /// [`ResourceSampler`] reports the rate over its tick interval.
    pub cpu_percent: f64,
    /// Resident set size in bytes.
    pub rss_bytes: u64,
    /// Kernel thread count.
    pub threads: u64,
    /// Open file descriptors.
    pub open_fds: u64,
    /// Process start time as seconds since the Unix epoch (the
    /// Prometheus `process_start_time_seconds` convention).
    pub start_time_seconds: f64,
    /// Cumulative user + system CPU ticks (internal rate basis).
    total_ticks: u64,
}

impl ProcessStats {
    /// Reads a one-shot snapshot, or `None` when `/proc` is
    /// unavailable (non-Linux hosts, locked-down sandboxes).
    pub fn sample() -> Option<ProcessStats> {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // comm can contain spaces and parentheses; fields restart after
        // the last ')'.
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // 0-based after comm: state=0, ..., utime=11, stime=12,
        // num_threads=17, starttime=19.
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        let threads: u64 = fields.get(17)?.parse().ok()?;
        let starttime: u64 = fields.get(19)?.parse().ok()?;

        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;

        let open_fds = std::fs::read_dir("/proc/self/fd")
            .map(|entries| entries.count() as u64)
            .unwrap_or(0);

        let btime = std::fs::read_to_string("/proc/stat")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find_map(|line| line.strip_prefix("btime "))
                    .and_then(|v| v.trim().parse::<u64>().ok())
            })
            .unwrap_or(0);
        let start_time_seconds = btime as f64 + starttime as f64 / CLK_TCK;

        let total_ticks = utime + stime;
        // Lifetime average as the rate baseline for a one-shot sample.
        let now_since_boot = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
            - start_time_seconds;
        let cpu_percent = if now_since_boot > 0.0 {
            (total_ticks as f64 / CLK_TCK) / now_since_boot * 100.0
        } else {
            0.0
        };

        Some(ProcessStats {
            cpu_percent,
            rss_bytes: resident_pages * PAGE_SIZE,
            threads,
            open_fds,
            start_time_seconds,
            total_ticks,
        })
    }
}

/// A background thread that re-reads [`ProcessStats`] on a fixed tick
/// and keeps the latest snapshot available, with `cpu_percent`
/// recomputed from the tick-over-tick delta. Dropping the sampler stops
/// the thread.
pub struct ResourceSampler {
    latest: Arc<Mutex<Option<ProcessStats>>>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ResourceSampler {
    /// Spawns the sampler with the given tick interval.
    pub fn spawn(interval: Duration) -> ResourceSampler {
        let latest: Arc<Mutex<Option<ProcessStats>>> = Arc::new(Mutex::new(ProcessStats::sample()));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let latest_thread = Arc::clone(&latest);
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("whart-prof-resources".to_string())
            .spawn(move || {
                let mut prev: Option<(u64, Instant)> = None;
                let (lock, cvar) = &*stop_thread;
                loop {
                    {
                        let stopped = lock.lock().expect("resource sampler flag poisoned");
                        if *stopped {
                            break;
                        }
                        let (stopped, _) = cvar
                            .wait_timeout(stopped, interval)
                            .expect("resource sampler flag poisoned");
                        if *stopped {
                            break;
                        }
                    }
                    let Some(mut stats) = ProcessStats::sample() else {
                        continue;
                    };
                    let now = Instant::now();
                    if let Some((prev_ticks, prev_at)) = prev {
                        let wall = now.duration_since(prev_at).as_secs_f64();
                        if wall > 0.0 {
                            let delta = stats.total_ticks.saturating_sub(prev_ticks) as f64;
                            stats.cpu_percent = (delta / CLK_TCK) / wall * 100.0;
                        }
                    }
                    prev = Some((stats.total_ticks, now));
                    *latest_thread.lock().expect("resource sampler poisoned") = Some(stats);
                }
            })
            .expect("spawn resource sampler thread");
        ResourceSampler {
            latest,
            stop,
            handle: Some(handle),
        }
    }

    /// The most recent snapshot, or `None` when `/proc` is unreadable.
    pub fn latest(&self) -> Option<ProcessStats> {
        *self.latest.lock().expect("resource sampler poisoned")
    }
}

impl Drop for ResourceSampler {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("resource sampler flag poisoned") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        assert!(prof.start_capture(DEFAULT_HZ).is_none());
        let frame = prof.frame("anything");
        // Guards on a disabled handle never touch thread-local state.
        let _a = prof.enter(frame);
        let _b = prof.enter(frame);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Profiler::default().is_enabled());
    }

    #[test]
    fn frames_intern_to_stable_ids() {
        let prof = Profiler::new();
        let a = prof.frame("engine.execute");
        let b = prof.frame("engine.execute");
        let c = prof.frame("engine.plan");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn capture_observes_nested_frames() {
        let prof = Profiler::new();
        let outer = prof.frame("outer");
        let inner = prof.frame("inner");
        let capture = prof.start_capture(4000).unwrap();
        {
            let _o = prof.enter(outer);
            let _i = prof.enter(inner);
            std::thread::sleep(Duration::from_millis(40));
        }
        let profile = capture.stop();
        assert!(profile.total_samples() > 0, "sampler never fired");
        assert!(profile.frame_total("outer") > 0);
        assert!(profile.frame_total("inner") > 0);
        let folded = profile.to_folded();
        assert!(
            folded.lines().any(|l| l.contains(";outer;inner ")),
            "nested stack missing from {folded:?}"
        );
        // Frames dropped: the stack is empty again, so a fresh capture
        // sees nothing.
        let idle = prof.start_capture(4000).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let idle = idle.stop();
        assert_eq!(idle.total_samples(), 0, "idle threads must not sample");
    }

    #[test]
    fn capture_sees_named_helper_threads() {
        let prof = Profiler::new();
        let work = prof.frame("helper.work");
        let capture = prof.start_capture(4000).unwrap();
        let prof2 = prof.clone();
        std::thread::Builder::new()
            .name("helper-0".to_string())
            .spawn(move || {
                let _g = prof2.enter(work);
                std::thread::sleep(Duration::from_millis(40));
            })
            .unwrap()
            .join()
            .unwrap();
        let profile = capture.stop();
        assert!(profile.thread_samples("helper-") > 0);
        assert!(profile
            .to_folded()
            .lines()
            .any(|l| l.starts_with("helper-0;helper.work ")));
    }

    #[test]
    fn depth_overflow_truncates_without_losing_balance() {
        let prof = Profiler::new();
        let frame = prof.frame("deep");
        let mut guards = Vec::new();
        for _ in 0..(MAX_DEPTH + 8) {
            guards.push(prof.enter(frame));
        }
        let capture = prof.start_capture(4000).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let profile = capture.stop();
        let max_len = profile
            .threads
            .iter()
            .flat_map(|t| &t.stacks)
            .map(|(s, _)| s.len())
            .max()
            .unwrap_or(0);
        assert!(max_len <= MAX_DEPTH);
        drop(guards);
        // Balanced: back to idle.
        let idle = prof.start_capture(4000).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(idle.stop().total_samples(), 0);
    }

    #[test]
    fn sanitize_strips_separators() {
        assert_eq!(sanitize_frame("a;b c\nd\te"), "a_b_c_d_e");
        assert_eq!(sanitize_frame(""), "_");
        assert_eq!(sanitize_frame("ok.frame-1"), "ok.frame-1");
    }

    #[test]
    fn folded_round_trips_a_synthetic_profile() {
        let profile = Profile {
            hz: DEFAULT_HZ,
            duration: Duration::from_millis(125),
            threads: vec![ThreadProfile {
                name: "main".to_string(),
                samples: 7,
                stacks: vec![
                    (vec!["a".to_string(), "b".to_string()], 4),
                    (vec!["a".to_string()], 3),
                ],
            }],
        };
        let folded = profile.to_folded();
        assert_eq!(folded, "main;a;b 4\nmain;a 3\n");
        let parsed = parse_folded(&folded).unwrap();
        assert_eq!(
            parsed,
            vec![
                (
                    vec!["main".to_string(), "a".to_string(), "b".to_string()],
                    4
                ),
                (vec!["main".to_string(), "a".to_string()], 3),
            ]
        );
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("main;a").is_err(), "missing count");
        assert!(parse_folded("main;a twelve").is_err(), "bad count");
        assert!(parse_folded("main;;a 3").is_err(), "empty frame");
        assert!(parse_folded("\n\n").unwrap().is_empty());
    }

    #[test]
    fn json_profile_has_frame_totals() {
        let profile = Profile {
            hz: 997,
            duration: Duration::from_millis(10),
            threads: vec![ThreadProfile {
                name: "main".to_string(),
                samples: 5,
                stacks: vec![
                    (vec!["a".to_string(), "b".to_string()], 3),
                    (vec!["a".to_string()], 2),
                ],
            }],
        };
        let json = profile.to_json();
        assert_eq!(json.get("total_samples").unwrap().as_u64(), Some(5));
        let frames = json.get("frames").unwrap().as_array().unwrap();
        let a = frames
            .iter()
            .find(|f| f.get("name").unwrap().as_str() == Some("a"))
            .unwrap();
        assert_eq!(a.get("total").unwrap().as_u64(), Some(5));
        assert_eq!(a.get("self").unwrap().as_u64(), Some(2));
        let b = frames
            .iter()
            .find(|f| f.get("name").unwrap().as_str() == Some("b"))
            .unwrap();
        assert_eq!(b.get("total").unwrap().as_u64(), Some(3));
        assert_eq!(b.get("self").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn process_stats_read_plausible_values() {
        let Some(stats) = ProcessStats::sample() else {
            // Non-Linux host: the facade degrades to absence, not error.
            return;
        };
        assert!(stats.rss_bytes > 0);
        assert!(stats.threads >= 1);
        assert!(stats.open_fds >= 1);
        assert!(stats.start_time_seconds > 0.0);
    }

    #[test]
    fn resource_sampler_serves_latest() {
        let sampler = ResourceSampler::spawn(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(40));
        if let Some(stats) = sampler.latest() {
            assert!(stats.rss_bytes > 0);
            assert!(stats.cpu_percent >= 0.0);
        }
    }
}
