//! Property tests for the folded-stack text format: hostile frame
//! names are sanitized at the boundary, the encoder never emits a `;`
//! or newline inside a frame, and encode → parse round-trips exactly.

use proptest::prelude::*;
use proptest::strategy::Map;
use std::time::Duration;
use whart_prof::{parse_folded, sanitize_frame, Profile, ThreadProfile, DEFAULT_HZ};

/// Alphabet biased toward hostile content: the folded separators (`;`,
/// space, newline), other whitespace, control characters and multi-byte
/// unicode, alongside ordinary label characters.
const ALPHABET: &[char] = &[
    'a', 'b', 'Z', '0', '.', '-', '_', ':', ';', ' ', '\t', '\n', '\r', '\u{7}', 'é', '→',
];

type NameStrategy =
    Map<proptest::collection::VecStrategy<std::ops::Range<usize>>, fn(Vec<usize>) -> String>;

/// Arbitrary frame labels over [`ALPHABET`], length 0..8 (empty names
/// included — sanitization must never emit an empty frame).
fn hostile_name() -> NameStrategy {
    proptest::collection::vec(0usize..ALPHABET.len(), 0..8)
        .prop_map(|indices| indices.into_iter().map(|i| ALPHABET[i]).collect())
}

fn stacks() -> impl Strategy<Value = Vec<(Vec<String>, u64)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(hostile_name(), 1..5),
            1u64..10_000,
        ),
        1..8,
    )
}

proptest! {
    #[test]
    fn folded_encode_parse_round_trips(per_thread in proptest::collection::vec(stacks(), 1..4)) {
        let threads: Vec<ThreadProfile> = per_thread
            .iter()
            .enumerate()
            .map(|(i, stacks)| ThreadProfile {
                name: sanitize_frame(&format!("t{i}")),
                samples: stacks.iter().map(|(_, c)| c).sum(),
                stacks: stacks
                    .iter()
                    .map(|(frames, count)| {
                        (frames.iter().map(|f| sanitize_frame(f)).collect(), *count)
                    })
                    .collect(),
            })
            .collect();
        let profile = Profile {
            hz: DEFAULT_HZ,
            duration: Duration::from_millis(1),
            threads: threads.clone(),
        };

        let folded = profile.to_folded();

        // No frame ever smuggles a separator into the text format: every
        // non-empty line is `frames... count` with non-empty frames.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("line has a count");
            prop_assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
            prop_assert!(!stack.contains(' '), "space inside stack: {line:?}");
            prop_assert!(
                stack.split(';').all(|f| !f.is_empty()),
                "empty frame in {line:?}"
            );
        }
        prop_assert!(!folded.contains("\n\n"));

        // Round-trip: parsed records match the synthesized stacks with
        // the thread name prepended as the root frame, in emission order.
        let parsed = parse_folded(&folded).expect("encoder output parses");
        let expected: Vec<(Vec<String>, u64)> = threads
            .iter()
            .flat_map(|t| {
                t.stacks.iter().map(|(frames, count)| {
                    let mut full = vec![t.name.clone()];
                    full.extend(frames.iter().cloned());
                    (full, *count)
                })
            })
            .collect();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn sanitized_names_carry_no_separators(name in hostile_name()) {
        let clean = sanitize_frame(&name);
        prop_assert!(!clean.is_empty());
        prop_assert!(!clean.contains(';'));
        prop_assert!(!clean.contains('\n'));
        prop_assert!(!clean.contains(char::is_whitespace));
    }
}
