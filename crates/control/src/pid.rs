//! A discrete PID controller.
//!
//! WirelessHART gateways "run the PID control function" on each received
//! sensor report (Section II of the paper). This is a standard positional
//! PID with derivative-on-measurement (avoids derivative kick), output
//! clamping and conditional anti-windup.

/// Discrete PID controller gains and limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain (per second).
    pub ki: f64,
    /// Derivative gain (seconds).
    pub kd: f64,
    /// Lower output clamp.
    pub output_min: f64,
    /// Upper output clamp.
    pub output_max: f64,
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig {
            kp: 1.0,
            ki: 0.0,
            kd: 0.0,
            output_min: -1e9,
            output_max: 1e9,
        }
    }
}

/// The controller state.
#[derive(Debug, Clone, PartialEq)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_measurement: Option<f64>,
}

impl Pid {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the output limits are inverted or any gain is not finite.
    pub fn new(config: PidConfig) -> Self {
        assert!(
            config.output_min < config.output_max,
            "output limits inverted"
        );
        assert!(
            config.kp.is_finite() && config.ki.is_finite() && config.kd.is_finite(),
            "gains must be finite"
        );
        Pid {
            config,
            integral: 0.0,
            last_measurement: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> PidConfig {
        self.config
    }

    /// Computes the control output for one sample.
    ///
    /// `dt` is the time since the previous update in seconds (the reporting
    /// interval for a WirelessHART loop).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn update(&mut self, setpoint: f64, measurement: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive");
        let error = setpoint - measurement;
        let proportional = self.config.kp * error;
        // Derivative on measurement (sign flipped) avoids setpoint kick.
        let derivative = match self.last_measurement {
            Some(last) => -self.config.kd * (measurement - last) / dt,
            None => 0.0,
        };
        self.last_measurement = Some(measurement);
        let candidate_integral = self.integral + self.config.ki * error * dt;
        let unclamped = proportional + candidate_integral + derivative;
        let output = unclamped.clamp(self.config.output_min, self.config.output_max);
        // Conditional anti-windup: only integrate while not pushing further
        // into saturation.
        if (output - unclamped).abs() < f64::EPSILON
            || (unclamped > self.config.output_max && error < 0.0)
            || (unclamped < self.config.output_min && error > 0.0)
        {
            self.integral = candidate_integral;
        }
        output
    }

    /// Resets the integral and derivative memory.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_measurement = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = Pid::new(PidConfig {
            kp: 2.0,
            ..PidConfig::default()
        });
        assert_eq!(pid.update(1.0, 0.0, 0.1), 2.0);
        assert_eq!(pid.update(1.0, 0.5, 0.1), 1.0);
        assert_eq!(pid.update(1.0, 1.0, 0.1), 0.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 1.0,
            ..PidConfig::default()
        });
        let o1 = pid.update(1.0, 0.0, 1.0);
        let o2 = pid.update(1.0, 0.0, 1.0);
        assert!((o1 - 1.0).abs() < 1e-12);
        assert!((o2 - 2.0).abs() < 1e-12);
        pid.reset();
        assert!((pid.update(1.0, 0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_damps_fast_measurement_changes() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            kd: 1.0,
            ..PidConfig::default()
        });
        let _ = pid.update(0.0, 0.0, 0.1);
        // Measurement rising at 10 units/s -> derivative output -10 * kd.
        let o = pid.update(0.0, 1.0, 0.1);
        assert!((o + 10.0).abs() < 1e-12);
    }

    #[test]
    fn output_is_clamped_and_integral_does_not_wind_up() {
        let mut pid = Pid::new(PidConfig {
            kp: 0.0,
            ki: 10.0,
            output_min: -1.0,
            output_max: 1.0,
            ..PidConfig::default()
        });
        for _ in 0..100 {
            assert!(pid.update(10.0, 0.0, 1.0) <= 1.0);
        }
        // After the setpoint flips, recovery is immediate-ish rather than
        // delayed by a huge wound-up integral.
        let o = pid.update(-10.0, 0.0, 1.0);
        assert!(o < 1.0, "integral wound up: {o}");
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let mut pid = Pid::new(PidConfig::default());
        let _ = pid.update(1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "output limits inverted")]
    fn bad_limits_rejected() {
        let _ = Pid::new(PidConfig {
            output_min: 1.0,
            output_max: -1.0,
            ..PidConfig::default()
        });
    }
}
