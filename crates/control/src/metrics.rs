//! Control-performance metrics computed from a loop trajectory.

use crate::loop_sim::LoopTrace;

/// Integral of squared error (ISE) against a setpoint, in
/// `units^2 * seconds`.
pub fn integral_squared_error(trace: &LoopTrace, setpoint: f64) -> f64 {
    trace
        .points
        .iter()
        .map(|p| {
            let e = setpoint - p.output;
            e * e * 0.01 // 10 ms slots
        })
        .sum()
}

/// Integral of absolute error (IAE) against a setpoint, in
/// `units * seconds`.
pub fn integral_absolute_error(trace: &LoopTrace, setpoint: f64) -> f64 {
    trace
        .points
        .iter()
        .map(|p| (setpoint - p.output).abs() * 0.01)
        .sum()
}

/// The first time (ms) after which the output stays within
/// `band` of the setpoint for the rest of the trace, if any.
pub fn settling_time_ms(trace: &LoopTrace, setpoint: f64, band: f64) -> Option<u32> {
    let mut settled_since: Option<u32> = None;
    for p in &trace.points {
        if (p.output - setpoint).abs() <= band {
            settled_since.get_or_insert(p.t_ms);
        } else {
            settled_since = None;
        }
    }
    settled_since
}

/// The maximum overshoot above the setpoint (zero if never exceeded).
pub fn overshoot(trace: &LoopTrace, setpoint: f64) -> f64 {
    trace
        .points
        .iter()
        .map(|p| p.output - setpoint)
        .fold(0.0, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_sim::TracePoint;

    fn trace(outputs: &[f64]) -> LoopTrace {
        LoopTrace {
            points: outputs
                .iter()
                .enumerate()
                .map(|(i, &y)| TracePoint {
                    t_ms: i as u32 * 10,
                    output: y,
                    command: 0.0,
                })
                .collect(),
            reports_lost: 0,
            reports_delivered: outputs.len() as u32,
        }
    }

    #[test]
    fn ise_and_iae() {
        let t = trace(&[0.0, 0.5, 1.0]);
        // errors 1.0, 0.5, 0.0 over 10 ms each.
        assert!((integral_squared_error(&t, 1.0) - (1.0 + 0.25) * 0.01).abs() < 1e-12);
        assert!((integral_absolute_error(&t, 1.0) - 1.5 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn settling_time_finds_last_entry_into_band() {
        let t = trace(&[0.0, 0.9, 1.2, 0.98, 1.01, 0.99]);
        // Within +-0.05 from index 3 onwards -> 30 ms.
        assert_eq!(settling_time_ms(&t, 1.0, 0.05), Some(30));
        // Tight band never settles.
        assert_eq!(settling_time_ms(&t, 1.0, 0.001), None);
    }

    #[test]
    fn overshoot_measures_peak() {
        let t = trace(&[0.0, 1.3, 0.9]);
        assert!((overshoot(&t, 1.0) - 0.3).abs() < 1e-12);
        assert_eq!(overshoot(&trace(&[0.0, 0.5]), 1.0), 0.0);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = LoopTrace::default();
        assert_eq!(integral_squared_error(&t, 1.0), 0.0);
        assert_eq!(settling_time_ms(&t, 1.0, 0.1), None);
        assert_eq!(overshoot(&t, 1.0), 0.0);
    }
}
