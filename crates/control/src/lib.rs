//! Networked control loop on top of the WirelessHART model — the paper's
//! stated future work ("include the computed reachability probabilities
//! directly into the control loop, in order to analyze the stability of a
//! control loop"), built as an extension.
//!
//! * [`Pid`] — the gateway's discrete PID controller;
//! * [`FirstOrderPlant`] / [`TankPlant`] — classic process-industry plants;
//! * [`run_loop`] — the closed loop with sensor reports crossing the
//!   network per a [`DeliveryProcess`] (sampled from an analytical
//!   [`whart_model::PathEvaluation`] via [`ModelDelivery`], or ideal via
//!   [`PerfectDelivery`]);
//! * [`metrics`] — ISE/IAE, settling time and overshoot.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use whart_control::{
//!     run_loop, FirstOrderPlant, LoopConfig, PerfectDelivery, Pid, PidConfig,
//! };
//!
//! let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
//! let mut pid = Pid::new(PidConfig { kp: 2.0, ki: 1.0, ..PidConfig::default() });
//! let config = LoopConfig {
//!     setpoint: 1.0,
//!     duration_ms: 30_000,
//!     reporting_interval_ms: 560,
//!     symmetric_downlink: true,
//! };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let trace = run_loop(&mut plant, &mut pid, &PerfectDelivery { delay_ms: 70 }, config, &mut rng);
//! assert!((trace.points.last().unwrap().output - 1.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loop_sim;
mod pid;
mod plant;

pub mod metrics;

pub use loop_sim::{
    run_loop, DeliveryProcess, LoopConfig, LoopTrace, ModelDelivery, PerfectDelivery, TracePoint,
};
pub use pid::{Pid, PidConfig};
pub use plant::{FirstOrderPlant, Plant, TankPlant};
