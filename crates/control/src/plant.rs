//! Simple process models.
//!
//! The paper's motivating applications are process-industry loops (flow
//! speeds, fluid levels, temperatures). Two classic plants cover them:
//! a first-order lag (temperature/flow) and a leaky integrator (tank
//! level). Both are integrated with forward Euler at the 10 ms slot rate,
//! far below their time constants.

/// A continuous-time process integrated in discrete steps.
pub trait Plant {
    /// Advances the plant by `dt` seconds under control input `u` and
    /// returns the new output.
    fn step(&mut self, u: f64, dt: f64) -> f64;

    /// The current output without advancing time.
    fn output(&self) -> f64;
}

/// First-order lag: `T * dy/dt = -y + K * u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstOrderPlant {
    gain: f64,
    time_constant: f64,
    state: f64,
}

impl FirstOrderPlant {
    /// Creates the plant at initial output `y0`.
    ///
    /// # Panics
    ///
    /// Panics if `time_constant` is not positive.
    pub fn new(gain: f64, time_constant: f64, y0: f64) -> Self {
        assert!(time_constant > 0.0, "time constant must be positive");
        FirstOrderPlant {
            gain,
            time_constant,
            state: y0,
        }
    }
}

impl Plant for FirstOrderPlant {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        let dy = (-self.state + self.gain * u) / self.time_constant;
        self.state += dy * dt;
        self.state
    }

    fn output(&self) -> f64 {
        self.state
    }
}

/// A leaky tank: `dy/dt = K * u - leak * y` (level rises with inflow `u`,
/// drains proportionally to level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TankPlant {
    inflow_gain: f64,
    leak: f64,
    level: f64,
}

impl TankPlant {
    /// Creates a tank at initial level `y0`.
    ///
    /// # Panics
    ///
    /// Panics if `leak` is negative.
    pub fn new(inflow_gain: f64, leak: f64, y0: f64) -> Self {
        assert!(leak >= 0.0, "leak must be non-negative");
        TankPlant {
            inflow_gain,
            leak,
            level: y0,
        }
    }
}

impl Plant for TankPlant {
    fn step(&mut self, u: f64, dt: f64) -> f64 {
        self.level += (self.inflow_gain * u - self.leak * self.level) * dt;
        self.level = self.level.max(0.0); // tanks do not go negative
        self.level
    }

    fn output(&self) -> f64 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_settles_to_gain_times_input() {
        let mut p = FirstOrderPlant::new(2.0, 1.0, 0.0);
        let mut y = 0.0;
        for _ in 0..100_000 {
            y = p.step(1.0, 0.001);
        }
        assert!((y - 2.0).abs() < 1e-6, "{y}");
    }

    #[test]
    fn first_order_initial_slope() {
        // dy/dt at t=0 with y=0, u=1: K/T.
        let mut p = FirstOrderPlant::new(3.0, 2.0, 0.0);
        let y = p.step(1.0, 0.01);
        assert!((y - 3.0 / 2.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn tank_balances_inflow_and_leak() {
        let mut t = TankPlant::new(1.0, 0.5, 0.0);
        let mut y = 0.0;
        for _ in 0..200_000 {
            y = t.step(1.0, 0.001);
        }
        // Equilibrium: K u / leak = 2.
        assert!((y - 2.0).abs() < 1e-6, "{y}");
    }

    #[test]
    fn tank_never_negative() {
        let mut t = TankPlant::new(1.0, 0.1, 0.5);
        for _ in 0..1000 {
            let y = t.step(-10.0, 0.01);
            assert!(y >= 0.0);
        }
    }

    #[test]
    fn output_matches_state() {
        let mut p = FirstOrderPlant::new(1.0, 1.0, 0.25);
        assert_eq!(p.output(), 0.25);
        let y = p.step(0.0, 0.1);
        assert_eq!(p.output(), y);
    }
}
