//! The networked control loop.
//!
//! Closes the loop the paper describes (Section II): sensors sample once
//! per reporting interval, the measurement crosses the WirelessHART uplink
//! with the delay/loss behaviour of a [`PathEvaluation`], the gateway PID
//! computes a command, and the command returns over the symmetric downlink
//! before the actuator applies it (zero-order hold in between). Lost
//! reports mean the actuator keeps running on a stale command — exactly
//! the destabilizing effect the paper's reachability measure guards
//! against ("if a message fails to reach the gateway, the input signal I
//! is lost, possibly causing instability to the control loop").

use crate::pid::Pid;
use crate::plant::Plant;
use rand::Rng;
use whart_model::{DelayConvention, PathEvaluation};

/// Samples, per reporting interval, whether the sensor report is delivered
/// and with what one-way delay.
pub trait DeliveryProcess {
    /// Returns `Some(one_way_delay_ms)` if the report is delivered, `None`
    /// if it is lost.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32>;
}

/// An ideal network: always delivered at a fixed delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfectDelivery {
    /// The constant one-way delay in milliseconds.
    pub delay_ms: u32,
}

impl DeliveryProcess for PerfectDelivery {
    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> Option<u32> {
        Some(self.delay_ms)
    }
}

/// Delivery sampled from an analytical path evaluation: the report arrives
/// in cycle `i` with the evaluation's cycle probabilities (its delay is the
/// corresponding paper delay) and is lost with `1 - R`.
#[derive(Debug, Clone)]
pub struct ModelDelivery {
    evaluation: PathEvaluation,
}

impl ModelDelivery {
    /// Wraps an evaluation.
    pub fn new(evaluation: PathEvaluation) -> Self {
        ModelDelivery { evaluation }
    }
}

impl DeliveryProcess for ModelDelivery {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        let mut roll = rng.gen::<f64>();
        for cycle in 1..=self.evaluation.interval().cycles() {
            let p = self
                .evaluation
                .cycle_probabilities()
                .get(cycle as usize - 1);
            if roll < p {
                return Some(self.evaluation.delay_ms(cycle, DelayConvention::Absolute) as u32);
            }
            roll -= p;
        }
        None
    }
}

/// Loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopConfig {
    /// Desired plant output.
    pub setpoint: f64,
    /// Total simulated time in milliseconds.
    pub duration_ms: u32,
    /// Sensor reporting interval in milliseconds (`Is * F_s * 10`).
    pub reporting_interval_ms: u32,
    /// Whether the command's downlink delay mirrors the uplink delay (the
    /// paper's symmetric assumption); otherwise the command applies
    /// immediately on computation.
    pub symmetric_downlink: bool,
}

/// One sample of the loop trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Time in milliseconds.
    pub t_ms: u32,
    /// Plant output.
    pub output: f64,
    /// Actuator command in effect.
    pub command: f64,
}

/// The simulated trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopTrace {
    /// Samples at every 10 ms slot.
    pub points: Vec<TracePoint>,
    /// Sensor reports lost in transit.
    pub reports_lost: u32,
    /// Sensor reports delivered.
    pub reports_delivered: u32,
}

/// Runs the networked loop: plant integrated at the 10 ms slot rate,
/// sensor sampled once per reporting interval, PID updated on delivery,
/// command applied after the (optional) downlink delay.
pub fn run_loop<P, D, R>(
    plant: &mut P,
    pid: &mut Pid,
    delivery: &D,
    config: LoopConfig,
    rng: &mut R,
) -> LoopTrace
where
    P: Plant,
    D: DeliveryProcess,
    R: Rng + ?Sized,
{
    const SLOT_MS: u32 = 10;
    let dt = f64::from(config.reporting_interval_ms) / 1000.0;
    let mut trace = LoopTrace::default();
    let mut command = 0.0f64;
    // Commands scheduled to take effect at a future time.
    let mut pending: Vec<(u32, f64)> = Vec::new();
    let mut t = 0u32;
    while t < config.duration_ms {
        if t % config.reporting_interval_ms == 0 {
            let measurement = plant.output();
            match delivery.sample(rng) {
                Some(delay) => {
                    trace.reports_delivered += 1;
                    let output = pid.update(config.setpoint, measurement, dt);
                    let apply_at = if config.symmetric_downlink {
                        t + 2 * delay
                    } else {
                        t + delay
                    };
                    pending.push((apply_at, output));
                }
                None => trace.reports_lost += 1,
            }
        }
        pending.retain(|&(apply_at, value)| {
            if apply_at <= t {
                command = value;
                false
            } else {
                true
            }
        });
        plant.step(command, f64::from(SLOT_MS) / 1000.0);
        trace.points.push(TracePoint {
            t_ms: t,
            output: plant.output(),
            command,
        });
        t += SLOT_MS;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pid::{Pid, PidConfig};
    use crate::plant::FirstOrderPlant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use whart_channel::LinkModel;
    use whart_model::{LinkDynamics, PathModel};
    use whart_net::{ReportingInterval, Superframe};

    fn pid() -> Pid {
        Pid::new(PidConfig {
            kp: 2.0,
            ki: 1.0,
            kd: 0.0,
            output_min: -10.0,
            output_max: 10.0,
        })
    }

    fn config() -> LoopConfig {
        LoopConfig {
            setpoint: 1.0,
            duration_ms: 60_000,
            reporting_interval_ms: 560, // Is=4 * Fs=14 slots * 10 ms
            symmetric_downlink: true,
        }
    }

    fn example_eval(pi: f64) -> PathEvaluation {
        let link = LinkModel::from_availability(pi, 0.9).unwrap();
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(link), 2)
            .add_hop(LinkDynamics::steady(link), 5)
            .add_hop(LinkDynamics::steady(link), 6);
        b.superframe(Superframe::symmetric(7).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        b.build().unwrap().evaluate()
    }

    #[test]
    fn perfect_network_settles_to_setpoint() {
        let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = run_loop(
            &mut plant,
            &mut pid(),
            &PerfectDelivery { delay_ms: 70 },
            config(),
            &mut rng,
        );
        assert_eq!(trace.reports_lost, 0);
        let tail = &trace.points[trace.points.len() - 50..];
        for p in tail {
            assert!((p.output - 1.0).abs() < 0.05, "t={} y={}", p.t_ms, p.output);
        }
    }

    #[test]
    fn model_delivery_samples_paper_distribution() {
        let delivery = ModelDelivery::new(example_eval(0.75));
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 50_000;
        let mut lost = 0u32;
        let mut first_cycle = 0u32;
        for _ in 0..trials {
            match delivery.sample(&mut rng) {
                None => lost += 1,
                Some(70) => first_cycle += 1,
                Some(d) => assert!([210, 350, 490].contains(&d), "{d}"),
            }
        }
        let loss_rate = f64::from(lost) / f64::from(trials);
        let first_rate = f64::from(first_cycle) / f64::from(trials);
        assert!((loss_rate - 0.0376).abs() < 0.005, "{loss_rate}");
        assert!((first_rate - 0.4219).abs() < 0.01, "{first_rate}");
    }

    #[test]
    fn lossy_network_degrades_control() {
        let mut rng = StdRng::seed_from_u64(5);
        let run = |pi: f64, rng: &mut StdRng| {
            let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
            let trace = run_loop(
                &mut plant,
                &mut pid(),
                &ModelDelivery::new(example_eval(pi)),
                config(),
                rng,
            );
            crate::metrics::integral_squared_error(&trace, 1.0)
        };
        // Average several runs to keep the comparison stable.
        let mut good = 0.0;
        let mut bad = 0.0;
        for _ in 0..10 {
            good += run(0.948, &mut rng);
            bad += run(0.693, &mut rng);
        }
        assert!(bad > good, "bad {bad} vs good {good}");
    }

    #[test]
    fn loss_counter_matches_reachability() {
        let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(17);
        let mut cfg = config();
        cfg.duration_ms = 560 * 5_000;
        let trace = run_loop(
            &mut plant,
            &mut pid(),
            &ModelDelivery::new(example_eval(0.75)),
            cfg,
            &mut rng,
        );
        let total = trace.reports_delivered + trace.reports_lost;
        let loss_rate = f64::from(trace.reports_lost) / f64::from(total);
        assert!((loss_rate - 0.0376).abs() < 0.01, "{loss_rate}");
    }

    #[test]
    fn asymmetric_downlink_applies_sooner() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = |symmetric: bool, rng: &mut StdRng| {
            let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
            let cfg = LoopConfig {
                symmetric_downlink: symmetric,
                ..config()
            };
            let trace = run_loop(
                &mut plant,
                &mut pid(),
                &PerfectDelivery { delay_ms: 210 },
                cfg,
                rng,
            );
            // Time of first non-zero command.
            trace
                .points
                .iter()
                .find(|p| p.command != 0.0)
                .map(|p| p.t_ms)
                .unwrap()
        };
        let sym = run(true, &mut rng);
        let asym = run(false, &mut rng);
        assert!(sym > asym, "{sym} vs {asym}");
    }
}
