//! Cross-crate integration: the three independent implementations of the
//! system — fast evaluator, explicit Algorithm-1 chain, and the slot-level
//! Monte-Carlo simulator — must tell the same story end to end.

use wirelesshart::channel::LinkModel;
use wirelesshart::model::explicit::explicit_chain;
use wirelesshart::model::{DelayConvention, NetworkModel, UtilizationConvention};
use wirelesshart::net::typical::TypicalNetwork;
use wirelesshart::net::ReportingInterval;
use wirelesshart::sim::{wilson_interval, PhyMode, Simulator};

fn network(availability: f64) -> TypicalNetwork {
    TypicalNetwork::new(LinkModel::from_availability(availability, 0.9).unwrap())
}

#[test]
fn evaluator_vs_explicit_chain_on_every_network_path() {
    let net = network(0.83);
    let model =
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR).unwrap();
    for index in 0..net.paths.len() {
        let path_model = model.path_model(index).unwrap();
        let fast = path_model.evaluate();
        let slow = explicit_chain(&path_model).cycle_probabilities().unwrap();
        for i in 0..4 {
            assert!(
                (fast.cycle_probabilities().get(i) - slow.get(i)).abs() < 1e-12,
                "path {index} cycle {i}"
            );
        }
    }
}

#[test]
fn simulator_vs_model_on_the_typical_network() {
    let net = network(0.83);
    let model =
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR).unwrap();
    let analytic = model.evaluate().unwrap();
    let sim = Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )
    .unwrap();
    let observed = sim.run_parallel(20130624, 60_000, 4);

    // Reachability: each path inside a wide (99.9%) interval, at most one
    // marginal miss across the ten simultaneous checks.
    let mut misses = 0;
    for (i, report) in analytic.reports().iter().enumerate() {
        let stats = &observed.paths[i];
        let delivered = stats.messages() - stats.lost;
        let (lo, hi) = wilson_interval(delivered, stats.messages(), 3.29);
        if !(lo..=hi).contains(&report.evaluation.reachability()) {
            misses += 1;
        }
    }
    assert!(misses <= 1, "{misses} paths outside their 99.9% intervals");

    // Aggregates.
    let analytic_mean = analytic.mean_delay_ms(DelayConvention::Absolute).unwrap();
    let observed_mean = observed.mean_delay_ms().unwrap();
    assert!(
        (analytic_mean - observed_mean).abs() < 3.0,
        "{analytic_mean} vs {observed_mean}"
    );
    let analytic_u = analytic.utilization(UtilizationConvention::AsEvaluated);
    let observed_u = observed.network_utilization();
    assert!(
        (analytic_u - observed_u).abs() < 0.004,
        "{analytic_u} vs {observed_u}"
    );
}

#[test]
fn simulator_cycle_distribution_matches_model() {
    // Beyond reachability: the full per-cycle arrival distribution of the
    // 3-hop path 10 must match the DTMC's cycle probabilities.
    let net = network(0.83);
    let model =
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR).unwrap();
    let analytic = model.path_model(9).unwrap().evaluate();
    let sim = Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )
    .unwrap();
    let observed = sim.run(99, 60_000);
    let fractions = observed.paths[9].cycle_fractions();
    for (i, fraction) in fractions.iter().enumerate() {
        let want = analytic.cycle_probabilities().get(i);
        assert!(
            (fraction - want).abs() < 0.006,
            "cycle {i}: {fraction} vs {want}"
        );
    }
}

#[test]
fn shared_links_do_not_bias_per_path_reachability() {
    // The analytical model treats paths independently although they share
    // physical links; the simulator shares them. Agreement (above) shows
    // the decomposition is sound for reachability; here we additionally
    // check a heavily shared link: e3 carries paths 3, 7, 8 and 10.
    let net = network(0.774);
    let model =
        NetworkModel::from_typical(&net, net.schedule_eta_a(), ReportingInterval::REGULAR).unwrap();
    let analytic = model.evaluate().unwrap();
    let sim = Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )
    .unwrap();
    let observed = sim.run_parallel(7, 60_000, 4);
    for index in [2usize, 6, 7, 9] {
        let a = analytic.reports()[index].evaluation.reachability();
        let s = observed.paths[index].reachability();
        assert!((a - s).abs() < 0.006, "path {}: {a} vs {s}", index + 1);
    }
}

#[test]
fn hopping_phy_reduces_to_gilbert_on_average() {
    // With every channel at the BER corresponding to p_fl and an
    // effectively memoryless chain, the two PHY modes agree on long-run
    // delivery statistics of a 1-hop path (first-cycle probability =
    // per-slot success probability in both cases).
    let ber = 2e-4;
    let p_success = 1.0 - wirelesshart::channel::message_failure_probability(ber, 1016);
    let net = network(0.83);
    let hopping = Simulator::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Hopping {
            conditions: wirelesshart::channel::ChannelConditions::uniform(ber).unwrap(),
            blacklist: wirelesshart::channel::Blacklist::new(),
            message_bits: 1016,
        },
    )
    .unwrap();
    let observed = hopping.run(3, 40_000);
    let first_cycle = observed.paths[0].cycle_fractions()[0];
    assert!(
        (first_cycle - p_success).abs() < 0.006,
        "{first_cycle} vs {p_success}"
    );
}
