//! Integration tests pinning every headline number of the paper's
//! evaluation through the public facade, one table/figure per test.
//!
//! Tolerances: values the paper states exactly are pinned to rounding
//! precision; the two known paper inconsistencies (Table I's 113 ms entry,
//! Fig. 9's "470 ms" label) are documented in EXPERIMENTS.md and asserted
//! at the model's value.

use wirelesshart::channel::{EbN0, LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use wirelesshart::model::compose::{peer_cycle_probabilities, predict_composition};
use wirelesshart::model::failure::reachability_with_lost_cycles;
use wirelesshart::model::{
    DelayConvention, LinkDynamics, NetworkModel, PathModel, UtilizationConvention,
};
use wirelesshart::net::typical::TypicalNetwork;
use wirelesshart::net::{ReportingInterval, Superframe};

/// The Section V example path at a given link model.
fn example_path(link: LinkModel, is: u32) -> wirelesshart::model::PathEvaluation {
    let mut b = PathModel::builder();
    b.add_hop(LinkDynamics::steady(link), 2)
        .add_hop(LinkDynamics::steady(link), 5)
        .add_hop(LinkDynamics::steady(link), 6)
        .superframe(Superframe::symmetric(7).unwrap())
        .interval(ReportingInterval::new(is).unwrap());
    b.build().unwrap().evaluate()
}

fn pi(availability: f64) -> LinkModel {
    LinkModel::from_availability(availability, 0.9).unwrap()
}

fn ber(ber: f64) -> LinkModel {
    LinkModel::from_ber(ber, WIRELESSHART_MESSAGE_BITS, 0.9).unwrap()
}

fn typical_eval(link: LinkModel, eta_b: bool, is: u32) -> wirelesshart::model::NetworkEvaluation {
    let net = TypicalNetwork::new(link);
    let schedule = if eta_b {
        net.schedule_eta_b()
    } else {
        net.schedule_eta_a()
    };
    NetworkModel::from_typical(&net, schedule, ReportingInterval::new(is).unwrap())
        .unwrap()
        .evaluate()
        .unwrap()
}

#[test]
fn section_iii_link_parameters() {
    // BER = 1e-4 -> p_fl = 0.0966, pi(up) = 0.9031 (Section V-B).
    let link = ber(1e-4);
    assert!((link.p_fl() - 0.0966).abs() < 5e-5);
    assert!((link.availability() - 0.9031).abs() < 5e-4);
}

#[test]
fn fig6_goal_state_probabilities() {
    let eval = example_path(pi(0.75), 4);
    let g = eval.cycle_probabilities();
    let want = [0.4219, 0.3164, 0.1582, 0.06592];
    for (i, w) in want.into_iter().enumerate() {
        assert!((g.get(i) - w).abs() < 5e-5, "goal {i}");
    }
    assert!((eval.reachability() - 0.9624).abs() < 5e-5);
}

#[test]
fn fig7_delay_distribution() {
    let eval = example_path(pi(0.75), 4);
    let d = eval.delay_distribution(DelayConvention::Absolute);
    let support: Vec<f64> = d.iter().map(|(v, _)| v).collect();
    assert_eq!(support, vec![70.0, 210.0, 350.0, 490.0]);
    let e = eval.expected_delay_ms(DelayConvention::Absolute).unwrap();
    assert!((e - 190.8).abs() < 0.05, "{e}");
    // Closed loop completes in one cycle with 0.4219^2 = 0.178.
    assert!((eval.cycle_probabilities().get(0).powi(2) - 0.178).abs() < 5e-4);
}

#[test]
fn fig8_reachability_vs_availability() {
    let cases = [
        (5e-4, 0.924),
        (3e-4, 0.9737),
        (2e-4, 0.9907),
        (1e-4, 0.9989),
        (5e-5, 0.9999),
    ];
    for (b, want) in cases {
        let r = example_path(ber(b), 4).reachability();
        assert!((r - want).abs() < 6e-4, "ber {b}: {r} vs {want}");
    }
}

#[test]
fn table1_reachability_and_delay() {
    // (BER, R%, E[tau]); the 0.903 delay is the model's value — the paper's
    // printed 113 is inconsistent with its own model (see EXPERIMENTS.md).
    let cases = [
        (3e-4, 97.37, 179.2),
        (2e-4, 99.07, 151.0),
        (1e-4, 99.89, 114.5),
        (5e-5, 99.99, 93.1),
    ];
    for (b, want_r, want_d) in cases {
        let eval = example_path(ber(b), 4);
        assert!(
            (eval.reachability() * 100.0 - want_r).abs() < 0.011,
            "R at ber {b}"
        );
        let d = eval.expected_delay_ms(DelayConvention::Absolute).unwrap();
        assert!((d - want_d).abs() < 0.25, "E[tau] at ber {b}: {d}");
    }
}

#[test]
fn fig9_annotated_points() {
    let d774 = example_path(ber(3e-4), 4).delay_distribution(DelayConvention::Absolute);
    assert!((d774.cdf(210.0) - d774.cdf(70.0) - 0.3228).abs() < 5e-4);
    assert!((d774.cdf(350.0) - d774.cdf(210.0) - 0.1459).abs() < 5e-4);
    let d948 = example_path(ber(5e-5), 4).delay_distribution(DelayConvention::Absolute);
    assert!((d948.cdf(210.0) - d948.cdf(70.0) - 0.1332).abs() < 5e-4);
}

#[test]
fn fig10_hop_count() {
    let want = [0.9992, 0.9964, 0.9907, 0.9812];
    for (hops, want_r) in (1u32..=4).zip(want) {
        let mut b = PathModel::builder();
        for k in 0..hops as usize {
            b.add_hop(LinkDynamics::steady(pi(0.83)), k);
        }
        b.superframe(Superframe::symmetric(hops).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        let r = b.build().unwrap().evaluate().reachability();
        assert!((r - want_r).abs() < 6e-4, "{hops} hops: {r}");
    }
}

#[test]
fn fig13_network_reachabilities() {
    let eval = typical_eval(ber(1e-4), false, 4);
    let r = eval.reachabilities();
    assert!((r[9] - 0.9989).abs() < 2e-4, "3-hop at 0.903: {}", r[9]);
    let eval = typical_eval(ber(5e-4), false, 4);
    let r = eval.reachabilities();
    assert!((r[9] - 0.9238).abs() < 2e-3, "3-hop at 0.693: {}", r[9]);
}

#[test]
fn fig14_overall_delay_distribution() {
    let eval = typical_eval(ber(2e-4), false, 4);
    let gamma = eval.overall_delay_distribution(DelayConvention::Absolute);
    let mean_r = eval.reachabilities().iter().sum::<f64>() / 10.0;
    assert!((gamma.cdf(200.0) * mean_r - 0.708).abs() < 2e-3);
    assert!(((gamma.cdf(600.0) - gamma.cdf(200.0)) * mean_r - 0.217).abs() < 3e-3);
    assert!((gamma.cdf(600.0) * mean_r - 0.926).abs() < 3e-3);
    assert!((gamma.cdf(1000.0) * mean_r - 0.983).abs() < 3e-3);
}

#[test]
fn fig15_fig16_schedules() {
    let a = typical_eval(ber(2e-4), false, 4);
    let da = a.expected_delays_ms(DelayConvention::Absolute);
    assert!((da[9].unwrap() - 421.409).abs() < 1.0);
    assert!((a.mean_delay_ms(DelayConvention::Absolute).unwrap() - 235.0).abs() < 1.0);

    let b = typical_eval(ber(2e-4), true, 4);
    let db = b.expected_delays_ms(DelayConvention::Absolute);
    assert!((db[9].unwrap() - 291.0).abs() < 1.5);
    assert!((db[6].unwrap() - 317.9528).abs() < 1.0);
    assert!((b.mean_delay_ms(DelayConvention::Absolute).unwrap() - 272.0).abs() < 1.0);
    assert_eq!(b.delay_bottleneck(DelayConvention::Absolute), Some(6));
}

#[test]
fn table2_network_utilization() {
    let cases = [
        (5e-4, 0.313),
        (3e-4, 0.297),
        (2e-4, 0.283),
        (1e-4, 0.263),
        (5e-5, 0.25),
        (1e-5, 0.24),
    ];
    for (b, want) in cases {
        let u = typical_eval(ber(b), false, 4).utilization(UtilizationConvention::AsEvaluated);
        assert!((u - want).abs() < 3e-3, "ber {b}: {u} vs {want}");
    }
}

#[test]
fn fig17_transient_recovery() {
    for p_fl in [0.184, 0.05] {
        let link = LinkModel::new(p_fl, 0.9).unwrap();
        let traj = LinkDynamics::starting_in(link, wirelesshart::channel::LinkState::Down)
            .up_trajectory(6);
        assert_eq!(traj[0], 0.0);
        assert!((traj[1] - 0.9).abs() < 1e-12);
        assert!((traj[6] - link.availability()).abs() < 2e-3);
    }
}

#[test]
fn table3_one_cycle_failure() {
    let cases = [(1usize, 99.92, 99.51), (2, 99.64, 98.30), (3, 99.07, 96.28)];
    for (hops, want_without, want_with) in cases {
        let mut b = PathModel::builder();
        for k in 0..hops {
            b.add_hop(LinkDynamics::steady(ber(2e-4)), k);
        }
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::new(4).unwrap());
        let model = b.build().unwrap();
        assert!(
            (model.evaluate().reachability() * 100.0 - want_without).abs() < 0.011,
            "{hops} hops baseline"
        );
        let degraded = reachability_with_lost_cycles(&model, 1).unwrap() * 100.0;
        assert!(
            (degraded - want_with).abs() < 0.011,
            "{hops} hops: {degraded}"
        );
    }
}

#[test]
fn fig18_fig19_fast_control() {
    // One-hop path at pi = 0.903 across reporting intervals.
    let one_hop = |is: u32| {
        let mut b = PathModel::builder();
        b.add_hop(LinkDynamics::steady(pi(0.903)), 0)
            .superframe(Superframe::symmetric(20).unwrap())
            .interval(ReportingInterval::new(is).unwrap());
        b.build().unwrap().evaluate().reachability()
    };
    assert!((one_hop(1) - 0.903).abs() < 1e-3);
    assert!((one_hop(2) - 0.99).abs() < 1e-3);
    assert!(one_hop(4) > 0.999);
    // Fig. 19: fast control is uniformly worse; the gap grows with hops and
    // with link degradation.
    for b in [1e-4, 5e-4] {
        let fast = typical_eval(ber(b), false, 2).reachabilities();
        let regular = typical_eval(ber(b), false, 4).reachabilities();
        assert!(fast.iter().zip(&regular).all(|(f, r)| f <= r));
        assert!(regular[9] - fast[9] > regular[0] - fast[0]);
    }
}

#[test]
fn table4_composition_prediction() {
    let interval = ReportingInterval::new(4).unwrap();
    let existing = |hops: usize| {
        let mut b = PathModel::builder();
        for k in 0..hops {
            b.add_hop(LinkDynamics::steady(pi(0.83)), k);
        }
        b.superframe(Superframe::symmetric(20).unwrap())
            .interval(interval);
        b.build().unwrap().evaluate()
    };
    let snr_link = |snr: f64| {
        LinkModel::from_snr(
            Modulation::Oqpsk,
            EbN0::from_linear(snr),
            WIRELESSHART_MESSAGE_BITS,
            0.9,
        )
        .unwrap()
    };
    let alpha = predict_composition(
        &peer_cycle_probabilities(snr_link(7.0), interval),
        1,
        &existing(2),
    )
    .unwrap();
    let beta = predict_composition(
        &peer_cycle_probabilities(snr_link(6.0), interval),
        1,
        &existing(1),
    )
    .unwrap();
    let want_alpha = [0.6274, 0.2694, 0.0784, 0.0193];
    let want_beta = [0.6573, 0.2485, 0.0707, 0.0180];
    for i in 0..4 {
        assert!((alpha.cycle_probabilities.get(i) - want_alpha[i]).abs() < 1.5e-3);
        assert!((beta.cycle_probabilities.get(i) - want_beta[i]).abs() < 1.5e-3);
    }
    assert!((alpha.reachability - 0.9946).abs() < 1e-3);
    assert!((beta.reachability - 0.9945).abs() < 1e-3);
}
