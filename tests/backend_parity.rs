//! Three-way solver parity through the single compiled problem IR.
//!
//! Every backend — the fast analytical evaluator, the explicit
//! Algorithm-1 chain, and the Monte-Carlo estimator — consumes the same
//! [`wirelesshart::model::NetworkProblem`], so any scenario the model
//! layer can express (link overrides, failure injections, interval
//! changes) is cross-validated structurally: there is no hand-wired
//! per-backend scenario setup that could drift.

use wirelesshart::channel::{LinkModel, LinkState};
use wirelesshart::model::{
    ExplicitSolver, FastSolver, LinkDynamics, MeasurePlan, NetworkEvaluation, NetworkModel, Outage,
    Solver,
};
use wirelesshart::net::typical::TypicalNetwork;
use wirelesshart::net::{Hop, NodeId, ReportingInterval};
use wirelesshart::sim::MonteCarloSolver;

fn typical_model(availability: f64, is: u32) -> NetworkModel {
    let net = TypicalNetwork::new(LinkModel::from_availability(availability, 0.9).unwrap());
    NetworkModel::from_typical(
        &net,
        net.schedule_eta_a(),
        ReportingInterval::new(is).unwrap(),
    )
    .unwrap()
}

/// Fast and explicit must agree to analytical precision on every path.
fn assert_analytical_parity(fast: &NetworkEvaluation, explicit: &NetworkEvaluation, label: &str) {
    assert_eq!(fast.reports().len(), explicit.reports().len());
    for (i, (f, e)) in fast.reports().iter().zip(explicit.reports()).enumerate() {
        assert_eq!(f.path.to_string(), e.path.to_string());
        let (fe, ee) = (&f.evaluation, &e.evaluation);
        for c in 0..fe.cycle_probabilities().len() {
            assert!(
                (fe.cycle_probabilities().get(c) - ee.cycle_probabilities().get(c)).abs() < 1e-12,
                "{label} path {i} cycle {c}: {} vs {}",
                fe.cycle_probabilities().get(c),
                ee.cycle_probabilities().get(c)
            );
        }
        assert!(
            (fe.reachability() - ee.reachability()).abs() < 1e-12,
            "{label} path {i}"
        );
        assert!(
            (fe.discard_probability() - ee.discard_probability()).abs() < 1e-12,
            "{label} path {i}"
        );
    }
}

/// Monte-Carlo estimates must land within sampling error of the fast
/// solver's exact values.
fn assert_statistical_parity(fast: &NetworkEvaluation, mc: &NetworkEvaluation, label: &str) {
    for (i, (f, m)) in fast.reports().iter().zip(mc.reports()).enumerate() {
        let (fe, me) = (&f.evaluation, &m.evaluation);
        assert!(
            (fe.reachability() - me.reachability()).abs() < 0.012,
            "{label} path {i}: exact {} vs estimated {}",
            fe.reachability(),
            me.reachability()
        );
        for c in 0..fe.cycle_probabilities().len() {
            assert!(
                (fe.cycle_probabilities().get(c) - me.cycle_probabilities().get(c)).abs() < 0.015,
                "{label} path {i} cycle {c}"
            );
        }
        assert!(
            (fe.expected_transmissions() - me.expected_transmissions()).abs() < 0.06,
            "{label} path {i}: E[tx] {} vs {}",
            fe.expected_transmissions(),
            me.expected_transmissions()
        );
    }
}

#[test]
fn fast_and_explicit_agree_across_the_typical_fleet() {
    for &pi in &[0.693, 0.83, 0.948] {
        for &is in &[1u32, 2, 4] {
            let problem = typical_model(pi, is).compile().unwrap();
            let fast = FastSolver
                .solve_network(&problem, MeasurePlan::default())
                .unwrap();
            let explicit = ExplicitSolver
                .solve_network(&problem, MeasurePlan::default())
                .unwrap();
            assert_analytical_parity(&fast, &explicit, &format!("pi={pi} Is={is}"));
        }
    }
}

#[test]
fn monte_carlo_converges_on_the_typical_network() {
    let problem = typical_model(0.83, 4).compile().unwrap();
    let fast = FastSolver
        .solve_network(&problem, MeasurePlan::default())
        .unwrap();
    let mc = MonteCarloSolver::new(20130624, 60_000)
        .solve_network(&problem, MeasurePlan::default())
        .unwrap();
    assert_statistical_parity(&fast, &mc, "pi=0.83 Is=4");
}

#[test]
fn all_three_backends_agree_under_injection_and_interval_override() {
    // The adversarial scenario the IR was built for: the reporting
    // interval is overridden away from the paper's default (Is = 2
    // instead of 4), link e3 = (n3, G) suffers an injected failure
    // (starts Down with a hard outage in slots 40..60), and link
    // (n4, n1) is overridden to a degraded quality. All of it must flow
    // through the one compiled problem identically for every backend.
    let mut model = typical_model(0.83, 2);
    let e3 = model
        .topology()
        .link_for(Hop::new(NodeId::field(3), NodeId::GATEWAY))
        .unwrap();
    model
        .override_link_dynamics(
            NodeId::field(3),
            NodeId::GATEWAY,
            LinkDynamics::starting_in(e3, LinkState::Down).with_outage(Outage::new(40, 60)),
        )
        .unwrap();
    model
        .override_link_dynamics(
            NodeId::field(4),
            NodeId::field(1),
            LinkDynamics::steady(LinkModel::from_availability(0.6, 0.9).unwrap()),
        )
        .unwrap();

    let problem = model.compile().unwrap();
    let fast = FastSolver
        .solve_network(&problem, MeasurePlan::default())
        .unwrap();
    let explicit = ExplicitSolver
        .solve_network(&problem, MeasurePlan::default())
        .unwrap();
    let mc = MonteCarloSolver::new(7, 60_000)
        .solve_network(&problem, MeasurePlan::default())
        .unwrap();
    assert_analytical_parity(&fast, &explicit, "injected");
    assert_statistical_parity(&fast, &mc, "injected");

    // Sanity: the injection really flowed through the IR — path 3
    // (index 2) crosses e3 and must be visibly degraded relative to the
    // clean network at the same overridden interval.
    let clean = FastSolver
        .solve_network(
            &typical_model(0.83, 2).compile().unwrap(),
            MeasurePlan::default(),
        )
        .unwrap();
    let hit = fast.reports()[2].evaluation.reachability();
    let base = clean.reports()[2].evaluation.reachability();
    assert!(
        hit < base - 1e-3,
        "injection had no effect: {hit} vs {base}"
    );
}
