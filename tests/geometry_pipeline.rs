//! End-to-end integration of the geometry extension: coordinates in,
//! quality-of-service out, with the model/simulator agreement holding on
//! the generated network too.

use wirelesshart::channel::PropagationModel;
use wirelesshart::model::{sensitivity, DelayConvention, NetworkModel};
use wirelesshart::net::{
    Deployment, Position, ReportingInterval, Schedule, SchedulePriority, Superframe,
};
use wirelesshart::sim::{PhyMode, Simulator};

fn build() -> (wirelesshart::net::Topology, Vec<wirelesshart::net::Path>) {
    let mut deployment = Deployment::new(
        Position::new(0.0, 0.0),
        PropagationModel::industrial(),
        0.85,
    )
    .unwrap();
    for (id, x, y) in [
        (1u32, 30.0, 0.0),
        (2, 55.0, 20.0),
        (3, 90.0, 0.0),
        (4, 120.0, 25.0),
        (5, 150.0, 0.0),
    ] {
        deployment.place(id, Position::new(x, y)).unwrap();
    }
    deployment.build_routed(4).unwrap()
}

#[test]
fn deployed_network_evaluates_and_simulates_consistently() {
    let (topology, paths) = build();
    let schedule = Schedule::by_priority(&paths, SchedulePriority::LongPathsFirst).unwrap();
    let total_hops: u32 = paths.iter().map(|p| p.hop_count() as u32).sum();
    let superframe = Superframe::symmetric(total_hops).unwrap();
    let interval = ReportingInterval::REGULAR;

    let model = NetworkModel::new(
        topology.clone(),
        paths.clone(),
        schedule.clone(),
        superframe,
        interval,
    )
    .unwrap();
    let analytic = model.evaluate().unwrap();
    // Deployment threshold 0.85 on single links keeps multi-hop routes
    // reasonable: every device above 0.99 at Is = 4.
    for r in analytic.reachabilities() {
        assert!(r > 0.99, "{r}");
    }
    assert!(analytic.mean_delay_ms(DelayConvention::Absolute).is_some());

    let sim = Simulator::new(
        topology,
        paths,
        schedule,
        superframe,
        interval,
        PhyMode::Gilbert,
    )
    .unwrap();
    let observed = sim.run(123, 30_000);
    for (i, r) in analytic.reports().iter().enumerate() {
        let a = r.evaluation.reachability();
        let s = observed.paths[i].reachability();
        assert!((a - s).abs() < 0.01, "device {}: {a} vs {s}", i + 1);
    }
}

#[test]
fn sensitivity_ranks_the_generated_network() {
    let (topology, paths) = build();
    let schedule = Schedule::by_priority(&paths, SchedulePriority::ShortPathsFirst).unwrap();
    let total_hops: u32 = paths.iter().map(|p| p.hop_count() as u32).sum();
    let model = NetworkModel::new(
        topology,
        paths,
        schedule,
        Superframe::symmetric(total_hops).unwrap(),
        ReportingInterval::REGULAR,
    )
    .unwrap();
    let ranking =
        sensitivity::rank_link_improvements(&model, sensitivity::Objective::TotalLoss, 0.02)
            .unwrap();
    assert_eq!(ranking.len(), model.topology().link_count());
    // The repair list is sorted by gain, and improving links never hurts.
    for pair in ranking.windows(2) {
        assert!(pair[0].gain >= pair[1].gain);
    }
    assert!(ranking.iter().all(|s| s.gain >= -1e-12));
    // The weakest physical link appears near the top of the list.
    let weakest = ranking
        .iter()
        .min_by(|a, b| a.availability.partial_cmp(&b.availability).unwrap())
        .unwrap();
    let weakest_rank = ranking.iter().position(|s| s.link == weakest.link).unwrap();
    assert!(weakest_rank <= 2, "weakest link ranked {weakest_rank}");
}
