//! Performance prediction for a joining node (Section VI-E / Table IV):
//! a new device measures the SNR towards two candidate relays and picks the
//! attachment with the best predicted route — without rebuilding any DTMC.
//!
//! ```sh
//! cargo run --example routing_advisor
//! ```

use wirelesshart::channel::{EbN0, LinkModel, Modulation, WIRELESSHART_MESSAGE_BITS};
use wirelesshart::model::compose::{
    peer_cycle_probabilities, predict_composition, rank_candidates,
};
use wirelesshart::model::{LinkDynamics, PathModel};
use wirelesshart::net::{ReportingInterval, Superframe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interval = ReportingInterval::new(4)?;
    let existing_link = LinkModel::from_availability(0.83, 0.9)?;

    // Existing routes in the mesh: node 3 reaches the gateway over 2 hops,
    // node 4 over 1 hop.
    let existing = |hops: usize| -> Result<_, Box<dyn std::error::Error>> {
        let mut b = PathModel::builder();
        for k in 0..hops {
            b.add_hop(LinkDynamics::steady(existing_link), k);
        }
        b.superframe(Superframe::symmetric(20)?).interval(interval);
        Ok(b.build()?.evaluate())
    };
    let via_node3 = existing(2)?;
    let via_node4 = existing(1)?;

    // Node 5 measures its candidate peer links via pilot packets.
    let measured = [("node 3", 7.0, &via_node3), ("node 4", 6.0, &via_node4)];
    let mut candidates = Vec::new();
    println!("candidate attachments for the joining node 5:\n");
    for (name, snr, existing) in measured {
        let peer_link = LinkModel::from_snr(
            Modulation::Oqpsk,
            EbN0::from_linear(snr),
            WIRELESSHART_MESSAGE_BITS,
            LinkModel::DEFAULT_RECOVERY,
        )?;
        let peer = peer_cycle_probabilities(peer_link, interval);
        let prediction = predict_composition(&peer, 1, existing)?;
        println!(
            "  via {name}: Eb/N0 = {snr}, p_fl = {:.3} -> predicted R = {:.4} over {} hops",
            peer_link.p_fl(),
            prediction.reachability,
            prediction.hop_count
        );
        println!(
            "    composed g = {:?}",
            prediction
                .cycle_probabilities
                .as_slice()
                .iter()
                .map(|p| (p * 1e4).round() / 1e4)
                .collect::<Vec<_>>()
        );
        candidates.push((name, prediction));
    }

    let order = rank_candidates(
        &candidates
            .iter()
            .map(|(_, p)| p.clone())
            .collect::<Vec<_>>(),
        0.001,
    );
    let (winner, prediction) = &candidates[order[0]];
    println!(
        "\ndecision: attach via {winner} (R = {:.4}, {} hops — fewer hops win a near-tie,\n\
         each extra hop costs a schedule slot and ~10 ms of delay)",
        prediction.reachability, prediction.hop_count
    );
    Ok(())
}
