//! Evaluate the paper's typical ten-node network (Fig. 12) under both
//! schedules and cross-check the analysis against the Monte-Carlo
//! simulator.
//!
//! ```sh
//! cargo run --release --example network_evaluation
//! ```

use wirelesshart::channel::LinkModel;
use wirelesshart::model::{DelayConvention, NetworkModel, UtilizationConvention};
use wirelesshart::net::typical::TypicalNetwork;
use wirelesshart::net::ReportingInterval;
use wirelesshart::sim::{PhyMode, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let link = LinkModel::from_ber(2e-4, 1016, 0.9)?; // pi(up) ~ 0.83
    let network = TypicalNetwork::new(link);

    for (name, schedule) in [
        ("eta_a (short paths first)", network.schedule_eta_a()),
        ("eta_b (long paths first)", network.schedule_eta_b()),
    ] {
        let model =
            NetworkModel::from_typical(&network, schedule.clone(), ReportingInterval::REGULAR)?;
        let evaluation = model.evaluate()?;
        println!("== schedule {name} ==");
        println!("{schedule}");
        println!("path  hops  R         E[tau] ms");
        for (i, report) in evaluation.reports().iter().enumerate() {
            println!(
                "{:>4}  {:>4}  {:.6}  {:>8.1}",
                i + 1,
                report.path.hop_count(),
                report.evaluation.reachability(),
                report
                    .evaluation
                    .expected_delay_ms(DelayConvention::Absolute)
                    .unwrap_or(f64::NAN)
            );
        }
        println!(
            "E[Gamma] = {:.1} ms, bottleneck = path {}, U = {:.4}\n",
            evaluation
                .mean_delay_ms(DelayConvention::Absolute)
                .expect("reachable"),
            evaluation
                .delay_bottleneck(DelayConvention::Absolute)
                .expect("paths")
                + 1,
            evaluation.utilization(UtilizationConvention::AsEvaluated),
        );
    }

    // Monte-Carlo cross-check under eta_a.
    println!("== Monte-Carlo cross-check (50,000 reporting intervals) ==");
    let sim = Simulator::from_typical(
        &network,
        network.schedule_eta_a(),
        ReportingInterval::REGULAR,
        PhyMode::Gilbert,
    )?;
    let report = sim.run_parallel(42, 50_000, 4);
    let model = NetworkModel::from_typical(
        &network,
        network.schedule_eta_a(),
        ReportingInterval::REGULAR,
    )?;
    let evaluation = model.evaluate()?;
    println!("path  analytic R  simulated R");
    for (i, r) in evaluation.reports().iter().enumerate() {
        println!(
            "{:>4}  {:>10.6}  {:>11.6}",
            i + 1,
            r.evaluation.reachability(),
            report.paths[i].reachability()
        );
    }
    println!(
        "mean delay: analytic {:.1} ms, simulated {:.1} ms",
        evaluation
            .mean_delay_ms(DelayConvention::Absolute)
            .expect("reachable"),
        report.mean_delay_ms().expect("delivered"),
    );
    Ok(())
}
