//! Quickstart: model the paper's Section V example path and print every
//! measure of interest.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wirelesshart::channel::LinkModel;
use wirelesshart::model::{DelayConvention, LinkDynamics, PathModel, UtilizationConvention};
use wirelesshart::net::{ReportingInterval, Superframe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-hop path n1 -> n2 -> n3 -> G. All links share a stationary
    // availability of 0.75 (p_fl = 0.3, p_rc = 0.9) and have reached steady
    // state. The communication schedule is
    // (*, *, <n1,n2>, *, *, <n2,n3>, <n3,G>) within a symmetric 7-slot
    // uplink half; sensors report every Is = 4 super-frames.
    let link = LinkModel::from_availability(0.75, LinkModel::DEFAULT_RECOVERY)?;
    let mut builder = PathModel::builder();
    builder
        .add_hop(LinkDynamics::steady(link), 2) // slot 3 (0-based 2)
        .add_hop(LinkDynamics::steady(link), 5) // slot 6
        .add_hop(LinkDynamics::steady(link), 6) // slot 7
        .superframe(Superframe::symmetric(7)?)
        .interval(ReportingInterval::new(4)?);
    let model = builder.build()?;
    let evaluation = model.evaluate();

    println!("three-hop example path (pi(up) = 0.75, Is = 4)\n");
    println!("cycle probability function g:");
    for (i, p) in evaluation
        .cycle_probabilities()
        .as_slice()
        .iter()
        .enumerate()
    {
        println!(
            "  cycle {}: P = {p:.4}   (delay {} ms)",
            i + 1,
            evaluation.delay_ms(i as u32 + 1, DelayConvention::Absolute)
        );
    }
    println!(
        "\nreachability R                = {:.4}",
        evaluation.reachability()
    );
    println!(
        "message loss 1 - R            = {:.4}",
        evaluation.discard_probability()
    );
    println!(
        "expected intervals to 1st loss = {:.1}",
        evaluation.expected_intervals_to_first_loss()
    );
    println!(
        "expected delay E[tau]          = {:.1} ms",
        evaluation
            .expected_delay_ms(DelayConvention::Absolute)
            .expect("path is reachable")
    );
    println!(
        "slot utilization U_p           = {:.4}",
        evaluation.utilization(UtilizationConvention::AsEvaluated)
    );
    Ok(())
}
