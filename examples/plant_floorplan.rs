//! From plant geometry to performance numbers: place devices on a floor
//! plan, derive link qualities from the log-distance propagation model,
//! route, schedule and evaluate — everything the paper assumes as input,
//! generated from first principles.
//!
//! ```sh
//! cargo run --example plant_floorplan
//! ```

use wirelesshart::channel::PropagationModel;
use wirelesshart::model::{DelayConvention, NetworkModel};
use wirelesshart::net::{
    Deployment, Position, ReportingInterval, Schedule, SchedulePriority, Superframe,
    MAX_HOPS_GUIDELINE,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 160 m x 60 m process hall. The gateway hangs at the control room
    // (origin); instruments sit along two production lines.
    let mut deployment = Deployment::new(
        Position::new(0.0, 0.0),
        PropagationModel::industrial(),
        0.85,
    )?;
    let instruments = [
        (1, 25.0, 10.0),   // flow meter, line A
        (2, 30.0, -12.0),  // pump, line B
        (3, 60.0, 8.0),    // temperature, line A
        (4, 65.0, -15.0),  // valve, line B
        (5, 95.0, 12.0),   // level sensor, tank farm
        (6, 100.0, -10.0), // compressor
        (7, 130.0, 5.0),   // far flow meter
        (8, 155.0, -5.0),  // flare stack monitor
    ];
    for (id, x, y) in instruments {
        deployment.place(id, Position::new(x, y))?;
    }

    let (topology, paths) = deployment.build_routed(MAX_HOPS_GUIDELINE)?;
    println!("generated topology: {} links", topology.link_count());
    println!("routes:");
    for (i, path) in paths.iter().enumerate() {
        let first_hop = path.hops().next().expect("paths have hops");
        let quality = topology.link_for(first_hop)?;
        println!(
            "  device {:>2}: {:<28} ({} hops, first-hop pi = {:.4})",
            i + 1,
            path.to_string(),
            path.hop_count(),
            quality.availability()
        );
    }

    // Schedule long paths first (the paper's eta_b insight) and evaluate.
    let schedule = Schedule::by_priority(&paths, SchedulePriority::LongPathsFirst)?;
    let total_hops: usize = paths.iter().map(|p| p.hop_count()).sum();
    let superframe = Superframe::symmetric(total_hops as u32)?;
    let model = NetworkModel::new(
        topology,
        paths,
        schedule,
        superframe,
        ReportingInterval::new(4)?,
    )?;
    let evaluation = model.evaluate()?;

    println!("\nper-device quality of service (Is = 4):");
    println!("device   R         E[delay]   95% delay   jitter");
    for (i, report) in evaluation.reports().iter().enumerate() {
        println!(
            "{:>6}   {:.6}  {:>7.1} ms  {:>7.1} ms  {:>5.1} ms",
            i + 1,
            report.evaluation.reachability(),
            report
                .evaluation
                .expected_delay_ms(DelayConvention::Absolute)
                .unwrap_or(f64::NAN),
            report
                .evaluation
                .delay_quantile_ms(0.95, DelayConvention::Absolute)
                .unwrap_or(f64::NAN),
            report
                .evaluation
                .delay_jitter_ms(DelayConvention::Absolute)
                .unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nnetwork mean delay E[Gamma] = {:.1} ms; weakest device: {}",
        evaluation
            .mean_delay_ms(DelayConvention::Absolute)
            .unwrap_or(f64::NAN),
        evaluation.reachability_bottleneck().map_or(0, |i| i + 1),
    );
    Ok(())
}
