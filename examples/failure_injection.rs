//! Robustness study (Section VI-C): inject transient, random-duration and
//! permanent failures on link e3 of the typical network and observe the
//! effect on every path crossing it.
//!
//! ```sh
//! cargo run --example failure_injection
//! ```

use wirelesshart::channel::{LinkModel, LinkState};
use wirelesshart::model::failure::{
    expected_reachability_geometric_failure, forced_outage_cycles, reachability_with_lost_cycles,
    reroute_after_permanent_failure,
};
use wirelesshart::model::{LinkDynamics, NetworkModel};
use wirelesshart::net::typical::TypicalNetwork;
use wirelesshart::net::{NodeId, ReportingInterval, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let link = LinkModel::from_ber(2e-4, 1016, 0.9)?; // pi(up) ~ 0.83
    let network = TypicalNetwork::new(link);
    let baseline = NetworkModel::from_typical(
        &network,
        network.schedule_eta_a(),
        ReportingInterval::REGULAR,
    )?;
    let healthy = baseline.evaluate()?;

    // 1. Transient error: the link chain recovers within a slot or two.
    println!("1. transient error on e3 — recovery trajectory from DOWN:");
    let recovery = LinkDynamics::starting_in(link, LinkState::Down).up_trajectory(6);
    println!("   P(up) per slot: {recovery:.3?}\n");

    // 2. Random-duration failure: e3 obstructed for one full cycle.
    println!("2. e3 obstructed for one 400 ms cycle (Table III):");
    println!("   path  hops  healthy R%  with failure R%");
    for (index, hops) in [(2usize, 1u32), (6, 2), (7, 2), (9, 3)] {
        let path_model = baseline.path_model(index)?;
        let degraded = reachability_with_lost_cycles(&path_model, 1)?;
        println!(
            "   {:>4}  {:>4}  {:>9.2}  {:>14.2}",
            index + 1,
            hops,
            healthy.reports()[index].evaluation.reachability() * 100.0,
            degraded * 100.0
        );
    }

    // The finer mechanism: e3 forced DOWN during cycle 1 only.
    let mut fine = baseline.clone();
    fine.override_link_dynamics(
        NodeId::field(3),
        NodeId::Gateway,
        LinkDynamics::steady(link).with_outage(forced_outage_cycles(network.superframe, 0, 1)),
    )?;
    let fine_eval = fine.evaluate()?;
    println!(
        "   (forced-DOWN ablation: path 10 drops to {:.2}% instead of {:.2}% — upstream hops\n\
         \u{20}   still progress during the outage)",
        fine_eval.reports()[9].evaluation.reachability() * 100.0,
        reachability_with_lost_cycles(&baseline.path_model(9)?, 1)? * 100.0
    );

    // Geometric failure durations.
    println!("\n3. random failure with geometric duration (path 10):");
    for mean in [1.0, 2.0, 3.0] {
        let expected = expected_reachability_geometric_failure(&baseline.path_model(9)?, mean)?;
        println!(
            "   mean duration {mean} cycles -> expected R = {:.4}",
            expected
        );
    }

    // 4. Permanent failure: remove e3, re-route, re-schedule.
    println!("\n4. permanent failure of (n9, n6) with a standby link (n9, n7):");
    let mut topology = network.topology.clone();
    topology.connect(NodeId::field(9), NodeId::field(7), link)?;
    let rerouted = reroute_after_permanent_failure(&topology, NodeId::field(9), NodeId::field(6))?;
    println!(
        "   re-routed devices: {:?}",
        rerouted.changed.iter().map(|i| i + 1).collect::<Vec<_>>()
    );
    println!("   new route for n9: {}", rerouted.paths[8]);
    let order: Vec<usize> = (0..rerouted.paths.len()).collect();
    let schedule = Schedule::sequential(&rerouted.paths, &order)?.padded(20);
    schedule.validate(&rerouted.topology, &rerouted.paths)?;
    println!("   regenerated schedule: {schedule}");
    Ok(())
}
