//! Closed-loop control over WirelessHART (the paper's future work): a PID
//! temperature loop whose sensor reports cross the Section V example path.
//! Compare control quality across link availabilities and reporting
//! intervals.
//!
//! ```sh
//! cargo run --example control_loop
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use wirelesshart::channel::LinkModel;
use wirelesshart::control::{
    metrics, run_loop, FirstOrderPlant, LoopConfig, ModelDelivery, Pid, PidConfig,
};
use wirelesshart::model::{LinkDynamics, PathModel};
use wirelesshart::net::{ReportingInterval, Superframe};

fn evaluate_path(
    availability: f64,
    interval: ReportingInterval,
) -> Result<wirelesshart::model::PathEvaluation, Box<dyn std::error::Error>> {
    let link = LinkModel::from_availability(availability, 0.9)?;
    let mut b = PathModel::builder();
    b.add_hop(LinkDynamics::steady(link), 2)
        .add_hop(LinkDynamics::steady(link), 5)
        .add_hop(LinkDynamics::steady(link), 6)
        .superframe(Superframe::symmetric(7)?)
        .interval(interval);
    Ok(b.build()?.evaluate())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("first-order plant (K = 1, T = 2 s), PID kp = 2, ki = 1, setpoint 1.0");
    println!("sensor path: the 3-hop Section V example; symmetric downlink\n");
    println!("pi(up)   Is   report every   ISE      IAE      settle   losses");
    for &availability in &[0.948, 0.903, 0.83, 0.774, 0.693] {
        for &is in &[2u32, 4] {
            let interval = ReportingInterval::new(is)?;
            let evaluation = evaluate_path(availability, interval)?;
            let report_ms = 140 * is; // F_s = 14 slots of 10 ms, Is cycles
            let config = LoopConfig {
                setpoint: 1.0,
                duration_ms: 120_000,
                reporting_interval_ms: report_ms,
                symmetric_downlink: true,
            };
            let mut rng = StdRng::seed_from_u64(7);
            let mut plant = FirstOrderPlant::new(1.0, 2.0, 0.0);
            let mut pid = Pid::new(PidConfig {
                kp: 2.0,
                ki: 1.0,
                kd: 0.0,
                output_min: -10.0,
                output_max: 10.0,
            });
            let trace = run_loop(
                &mut plant,
                &mut pid,
                &ModelDelivery::new(evaluation),
                config,
                &mut rng,
            );
            let settle = metrics::settling_time_ms(&trace, 1.0, 0.05)
                .map_or("never".to_string(), |t| {
                    format!("{:.1} s", f64::from(t) / 1000.0)
                });
            println!(
                "{availability:.3}   {is:>2}   {report_ms:>9} ms   {:>6.3}   {:>6.3}   {settle:>7}  {:>4}",
                metrics::integral_squared_error(&trace, 1.0),
                metrics::integral_absolute_error(&trace, 1.0),
                trace.reports_lost
            );
        }
    }
    println!("\nfaster reporting (Is = 2) tightens control but loses more messages —");
    println!("the balance Section VI-D of the paper discusses.");
    Ok(())
}
