//! Minimal, dependency-free stand-in for the parts of `criterion` 0.5 this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated (iteration count doubled
//! until the batch takes long enough to time reliably), then several samples
//! are taken and the median per-iteration time reported. When the
//! `WHART_BENCH_JSON` environment variable names a file, one JSON object per
//! benchmark is appended to it (JSON-lines) so runs can be post-processed
//! into checked-in trajectory points.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration; enables derived rates in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / `BenchmarkId` into a benchmark id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`; the harness reads back `elapsed`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct BenchRecord {
    id: String,
    mean_ns: f64,
    throughput: Option<Throughput>,
}

/// Entry point; collects results and prints/emits them as it goes.
#[derive(Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let record = run_benchmark(id.to_owned(), 100, None, routine);
        self.records.push(record);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        emit_json(&self.records);
    }
}

/// A named family of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        routine: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let record = run_benchmark(full, self.sample_size, self.throughput, routine);
        self.criterion.records.push(record);
        self
    }

    pub fn bench_with_input<I: ?Sized, N: IntoBenchmarkId, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    pub fn finish(self) {}
}

/// Calibrate, then sample, one benchmark routine.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) -> BenchRecord {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Calibration: double the batch size until a batch is long enough to
    // time reliably (or one iteration already dominates).
    let calibration_floor = Duration::from_millis(2);
    loop {
        routine(&mut bencher);
        if bencher.elapsed >= calibration_floor || bencher.iters >= 1 << 28 {
            break;
        }
        bencher.iters *= 2;
    }
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;

    // Measurement: spread a time budget proportional to the configured
    // sample size over a handful of samples; report the median.
    let budget_ns = 2.0e6 * sample_size as f64;
    let samples = 5u64;
    let iters_per_sample =
        ((budget_ns / samples as f64 / per_iter_ns.max(1.0)).ceil() as u64).max(1);
    bencher.iters = iters_per_sample;
    let mut measured: Vec<f64> = (0..samples)
        .map(|_| {
            routine(&mut bencher);
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        })
        .collect();
    measured.sort_by(f64::total_cmp);
    let mean_ns = measured[measured.len() / 2];

    let mut line = format!("{id:<50} time: [{}]", format_ns(mean_ns));
    if let Some(Throughput::Elements(n)) = throughput {
        let rate = n as f64 * 1e9 / mean_ns;
        line.push_str(&format!(" thrpt: [{rate:.0} elem/s]"));
    }
    println!("{line}");

    BenchRecord {
        id,
        mean_ns,
        throughput,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Append one JSON object per record to `$WHART_BENCH_JSON`, if set.
fn emit_json(records: &[BenchRecord]) {
    let Ok(path) = std::env::var("WHART_BENCH_JSON") else {
        return;
    };
    if path.is_empty() || records.is_empty() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("criterion: cannot open {path} for JSON emission");
        return;
    };
    for r in records {
        let throughput = match r.throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        let _ = writeln!(
            file,
            "{{\"id\":\"{}\",\"mean_ns\":{:.1}{}}}",
            json_escape(&r.id),
            r.mean_ns,
            throughput
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].mean_ns > 0.0);
        c.records.clear();
    }

    #[test]
    fn groups_prefix_ids_and_capture_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(10);
            g.throughput(Throughput::Elements(64));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.records[0].id, "grp/3");
        assert!(matches!(
            c.records[0].throughput,
            Some(Throughput::Elements(64))
        ));
        c.records.clear();
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
