//! Minimal, dependency-free stand-in for the parts of `proptest` 1.x this
//! workspace uses. Strategies are plain samplers (no shrinking): each test
//! case draws fresh inputs from a deterministic per-test RNG, runs the body
//! under `catch_unwind`, and reports the failing input's `Debug` repr before
//! re-raising the panic.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`, integer/float
//! ranges, tuples, `Just`, `any::<bool>()`, `prop_map` / `prop_flat_map`,
//! `collection::vec` and `sample::subsequence`.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// A source of random values of an associated type.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// `sample` produces a finished value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range strategy");
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }

            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty integer range strategy");
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((*self.start() as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.gen::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for ::core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.gen::<f64>() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for [`Arbitrary`] types; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<bool>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = self.hi - self.lo + 1;
            self.lo + (rng.next_u64() as usize % span)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for an order-preserving random subsequence of fixed length.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        count: usize,
    }

    /// Pick exactly `count` elements of `values`, preserving their order.
    pub fn subsequence<T: Clone>(values: Vec<T>, count: usize) -> Subsequence<T> {
        assert!(
            count <= values.len(),
            "subsequence count {} exceeds {} candidates",
            count,
            values.len()
        );
        Subsequence { values, count }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            // Knuth selection sampling: element i is kept with probability
            // (still needed) / (still remaining), which yields exactly
            // `count` picks in their original order.
            let n = self.values.len();
            let mut need = self.count;
            let mut out = Vec::with_capacity(need);
            for (i, v) in self.values.iter().enumerate() {
                let remaining = (n - i) as f64;
                if rng.gen::<f64>() * remaining < need as f64 {
                    out.push(v.clone());
                    need -= 1;
                    if need == 0 {
                        break;
                    }
                }
            }
            out
        }
    }
}

pub mod test_runner {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Per-test configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Verdict of one generated case: `Reject` means a failed `prop_assume!`.
    pub enum TestCaseResult {
        Pass,
        Reject,
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: sample inputs, run the body, skip rejects, and on
    /// panic print the offending input before re-raising.
    pub fn run_proptest<T, G, B>(config: ProptestConfig, name: &str, mut generate: G, mut body: B)
    where
        T: std::fmt::Debug,
        G: FnMut(&mut TestRng) -> T,
        B: FnMut(T) -> TestCaseResult,
    {
        let mut rng = TestRng::seed_from_u64(fnv1a(name.as_bytes()));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(1024);
        while passed < config.cases {
            let input = generate(&mut rng);
            let repr = format!("{input:?}");
            match catch_unwind(AssertUnwindSafe(|| body(input))) {
                Ok(TestCaseResult::Pass) => passed += 1,
                Ok(TestCaseResult::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many prop_assume! rejects \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest {name}: failed after {passed} passing case(s)\n\
                         proptest {name}: failing input = {repr}"
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $cfg,
                stringify!($name),
                |__proptest_rng| {
                    ($($crate::strategy::Strategy::sample(&($strat), __proptest_rng),)+)
                },
                |__proptest_input| {
                    let ($($pat,)+) = __proptest_input;
                    $body
                    $crate::test_runner::TestCaseResult::Pass
                },
            )
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                format!($($fmt)+)
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("prop_assert_eq! failed: left = {:?}, right = {:?}", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq! failed: left = {:?}, right = {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!("prop_assert_ne! failed: both sides = {:?}", l);
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::test_runner::TestCaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.25f64..0.75, z in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y = {y}");
            prop_assert!((5..=9).contains(&z));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_flat_map((len, values) in (1usize..5)
            .prop_flat_map(|len| (Just(len), crate::collection::vec(0.0f64..1.0, len))))
        {
            prop_assert_eq!(values.len(), len);
        }
    }

    #[test]
    fn subsequence_preserves_order_and_count() {
        let mut rng = TestRng::seed_from_u64(11);
        let strat = crate::sample::subsequence((0..20usize).collect::<Vec<_>>(), 7);
        for _ in 0..200 {
            let picked = strat.sample(&mut rng);
            assert_eq!(picked.len(), 7);
            assert!(picked.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn vec_size_ranges() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..100 {
            let exact = crate::collection::vec(0u32..10, 4usize).sample(&mut rng);
            assert_eq!(exact.len(), 4);
            let ranged = crate::collection::vec(0u32..10, 1..4usize).sample(&mut rng);
            assert!((1..=3).contains(&ranged.len()));
            let inclusive = crate::collection::vec(0u32..10, 1..=3usize).sample(&mut rng);
            assert!((1..=3).contains(&inclusive.len()));
        }
    }
}
