//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses: [`RngCore`], the blanket [`Rng`] extension trait with
//! `gen::<f64>()`, [`SeedableRng::seed_from_u64`] and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through splitmix64).
//!
//! The generator is *not* stream-compatible with upstream `rand`; all
//! statistical tests in the workspace use tolerances, not exact streams.

/// Core random-number source: a single 64-bit output function.
pub trait RngCore {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Rand: Sized {
    /// Draw one uniformly distributed value.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Rand for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Rand for u64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Rand for u32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Convenience extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of type `T`.
    fn gen<T: Rand>(&mut self) -> T {
        T::rand(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator; the workspace's standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
